"""Cross-artifact audit passes (rules ``XAR0xx``).

Five subsystems now emit artifacts about the *same* run — the profile's
BBV matrix, the DCFG, the SimPoint selection, the resilience run manifest,
the content-addressed artifact cache, and the obs span trace — and until
this module nothing validated the *relationships* between them.  A stale
selection against a regenerated profile, a manifest journaling keys a
different configuration produced, or a trace whose span counts disagree
with the metrics registry are all silent wrong answers; these passes turn
each into a finding.

Every check runs on whatever inputs it is given and degrades to "no
evidence" (not "no finding") when an artifact is absent — lint's general
contract that absences are only as good as the evidence collected.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..dcfg.graph import DCFG
from .findings import Finding, make_finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..clustering.simpoint import ClusterInfo
    from ..obs.trace import TraceData
    from ..parallel.artifacts import ArtifactCache
    from ..profiling.profile_result import ProfileData

#: Relative tolerance for instruction-mass reconciliation: the quantities
#: are integer-derived float sums, so disagreement beyond rounding noise
#: is corruption, not arithmetic.
MASS_RTOL = 1e-9

#: How many offending block ids to name individually before aggregating.
MAX_NAMED_BLOCKS = 5


def _close(a: float, b: float, rtol: float = MASS_RTOL) -> bool:
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= rtol * scale


def check_bbv_universe(
    profile: "ProfileData", dcfg: DCFG
) -> List[Finding]:
    """XAR001: every block with BBV mass must exist in the DCFG.

    The BBV matrix and the DCFG are two observers of one replay; the BBV
    additionally filters library code out, so its block universe must be
    a *subset* of the graph's executed nodes.  Mass attributed to a block
    the graph never saw means the profile and the graph describe
    different runs (stale artifact) or one of them is corrupt.
    """
    import numpy as np

    findings: List[Finding] = []
    matrix = profile.bbv_matrix()
    if matrix.size == 0:
        return findings
    nthreads = profile.nthreads
    dim = matrix.shape[1]
    if dim % nthreads != 0:
        findings.append(make_finding(
            "XAR001", "<bbv>",
            f"BBV dimension {dim} is not a multiple of the thread count "
            f"{nthreads}; the per-thread concatenation layout is broken",
        ))
        return findings
    nblocks = dim // nthreads
    column_mass = np.asarray(matrix).sum(axis=0)
    bbv_bids = {int(i) % nblocks for i in np.nonzero(column_mass)[0]}
    graph_bids = dcfg.nodes
    rogue = sorted(bbv_bids - graph_bids)
    if rogue:
        named = ", ".join(str(b) for b in rogue[:MAX_NAMED_BLOCKS])
        more = (
            f" (+{len(rogue) - MAX_NAMED_BLOCKS} more)"
            if len(rogue) > MAX_NAMED_BLOCKS else ""
        )
        findings.append(make_finding(
            "XAR001", f"blocks {named}{more}",
            f"{len(rogue)} block(s) carry BBV instruction mass but were "
            f"never executed according to the DCFG — the BBV matrix and "
            f"the graph describe different runs",
        ))
    return findings


def check_cluster_weights(
    profile: "ProfileData",
    clusters: Sequence["ClusterInfo"],
    dropped: Sequence[int] = (),
) -> List[Finding]:
    """XAR002: cluster masses and multipliers reconcile with the profile.

    Eq. (2) of the paper: a cluster's multiplier is its instruction mass
    over its representative's own count, and extrapolation weights
    ``multiplier * rep_count / total`` must sum to 1.  After degradation
    (dropped regions, ``repro.resilience.renormalize_clusters``) the kept
    multipliers are uniformly rescaled — so the reconciliation invariants
    become: the per-cluster rescale factor is *uniform*, it is exactly 1
    on an undegraded run, and the weights still sum to 1.
    """
    findings: List[Finding] = []
    total = float(profile.filtered_instructions)
    if total <= 0:
        findings.append(make_finding(
            "XAR002", "<profile>",
            f"profile filtered_instructions is {total}; nothing to weight "
            f"clusters against",
        ))
        return findings
    factors: Dict[int, float] = {}
    weight_sum = 0.0
    for cluster in clusters:
        rep = cluster.representative
        loc = f"cluster {cluster.cluster_id} (rep {rep})"
        if cluster.instruction_mass <= 0:
            findings.append(make_finding(
                "XAR002", loc,
                f"non-positive instruction mass "
                f"{cluster.instruction_mass}",
            ))
            continue
        if cluster.multiplier <= 0:
            findings.append(make_finding(
                "XAR002", loc,
                f"non-positive multiplier {cluster.multiplier}",
            ))
            continue
        if rep < 0 or rep >= len(profile.slices):
            continue  # XAR003's finding, not ours
        rep_count = float(
            profile.slices[rep].filtered_instructions
        )
        if rep_count <= 0:
            findings.append(make_finding(
                "XAR002", loc,
                "representative slice carries zero filtered instructions",
            ))
            continue
        weight_sum += cluster.multiplier * rep_count / total
        factors[cluster.cluster_id] = (
            cluster.multiplier * rep_count / cluster.instruction_mass
        )
    if factors:
        lo = min(factors.values())
        hi = max(factors.values())
        if not _close(lo, hi):
            findings.append(make_finding(
                "XAR002", "<clusters>",
                f"multiplier/mass rescale factor is not uniform across "
                f"clusters (min {lo:.12g}, max {hi:.12g}); degradation "
                f"renormalization scales every kept cluster identically",
            ))
        elif not dropped and not _close(hi, 1.0):
            findings.append(make_finding(
                "XAR002", "<clusters>",
                f"run reports no dropped regions but multipliers are "
                f"rescaled by {hi:.12g}; multiplier must equal "
                f"mass / representative count exactly (Eq. 2)",
            ))
    if not _close(weight_sum, 1.0, rtol=1e-6):
        findings.append(make_finding(
            "XAR002", "<clusters>",
            f"extrapolation weights sum to {weight_sum:.12g}, not 1: the "
            f"selection does not cover (exactly) the profiled "
            f"instruction mass",
        ))
    return findings


def check_selection_boundaries(
    profile: "ProfileData", clusters: Sequence["ClusterInfo"]
) -> List[Finding]:
    """XAR003: the selection indexes real slices on recorded boundaries.

    Representatives must name existing slices, belong to their own member
    list, the member lists must partition the slice population, and each
    selected slice's boundary markers must be PCs the profile actually
    recorded as markers.
    """
    findings: List[Finding] = []
    n = len(profile.slices)
    marker_pcs = set(profile.marker_pcs)
    seen: Dict[int, int] = {}
    for cluster in clusters:
        rep = cluster.representative
        loc = f"cluster {cluster.cluster_id} (rep {rep})"
        if rep < 0 or rep >= n:
            findings.append(make_finding(
                "XAR003", loc,
                f"representative {rep} names no slice (profile has {n})",
            ))
            continue
        if rep not in cluster.members:
            findings.append(make_finding(
                "XAR003", loc,
                "representative is not a member of its own cluster",
            ))
        for member in cluster.members:
            if member < 0 or member >= n:
                findings.append(make_finding(
                    "XAR003", loc,
                    f"member {member} names no slice (profile has {n})",
                ))
            elif member in seen:
                findings.append(make_finding(
                    "XAR003", loc,
                    f"slice {member} already belongs to cluster "
                    f"{seen[member]}; clusters must be disjoint",
                ))
            else:
                seen[member] = cluster.cluster_id
        s = profile.slices[rep]
        for which, marker in (("start", s.start), ("end", s.end)):
            if marker is not None and marker.pc not in marker_pcs:
                findings.append(make_finding(
                    "XAR003", loc,
                    f"selected slice's {which} boundary pc "
                    f"{marker.pc:#x} is not a recorded marker PC — the "
                    f"selection was made against a different profile",
                ))
    missing = [i for i in range(n) if i not in seen]
    if clusters and missing:
        named = ", ".join(str(i) for i in missing[:MAX_NAMED_BLOCKS])
        more = (
            f" (+{len(missing) - MAX_NAMED_BLOCKS} more)"
            if len(missing) > MAX_NAMED_BLOCKS else ""
        )
        findings.append(make_finding(
            "XAR003", f"slices {named}{more}",
            f"{len(missing)} slice(s) belong to no cluster; every slice's "
            f"mass must be represented",
        ))
    return findings


def check_manifest_keys(
    manifest_path: str,
    stage_keys: Dict[str, str],
    cache: Optional["ArtifactCache"] = None,
) -> List[Finding]:
    """XAR004: the run journal's stage keys match the current pipeline.

    The manifest's ``done`` events record the content-address each stage's
    artifact was stored under.  Those keys must equal the keys the current
    options produce (else the journal describes a different configuration)
    and, when a cache is attached, the journaled artifacts must actually
    exist in it (else ``--resume`` would silently recompute what the
    journal promises is done).
    """
    from ..errors import ResumeError
    from ..resilience.manifest import RunManifest

    findings: List[Finding] = []
    try:
        events, corrupt = RunManifest.load(manifest_path)
    except ResumeError as exc:
        findings.append(make_finding(
            "XAR004", manifest_path,
            f"manifest cannot be read: {exc}",
        ))
        return findings
    if corrupt:
        findings.append(make_finding(
            "XAR004", manifest_path,
            f"{corrupt} corrupt journal line(s) skipped while auditing",
        ))
    completed = RunManifest.completed_stages(RunManifest.last_run(events))
    if not completed:
        return findings
    for stage, journaled in sorted(completed.items()):
        expected = stage_keys.get(stage)
        if expected is None:
            continue  # e.g. "simulate": not a cache-backed stage
        if journaled != expected:
            findings.append(make_finding(
                "XAR004", f"stage {stage}",
                f"manifest records key {journaled[:12]}… but current "
                f"options produce {expected[:12]}…; the journal belongs "
                f"to a different configuration",
            ))
        elif cache is not None and not cache.has_key(stage, journaled):
            findings.append(make_finding(
                "XAR004", f"stage {stage}",
                f"manifest says stage completed under key "
                f"{journaled[:12]}… but no such artifact exists in the "
                f"cache — resume would silently recompute it",
            ))
    return findings


def check_trace_counters(trace_data: "TraceData") -> List[Finding]:
    """XAR005: the trace's span records reconcile with its own accounting.

    Two independent observers wrote the trace: the span writer (one
    record per closed span, plus the ``trace-end`` total) and the metrics
    registry (cache hit/miss counters).  On an untruncated parse they
    must agree: the root process's span records match the trace-end
    count, and stage spans claiming ``cache=hit``/``cache=miss`` cannot
    outnumber the registry's counters.
    """
    findings: List[Finding] = []
    if trace_data.truncated:
        return findings  # OBS002's territory; counts are a prefix
    if trace_data.end is not None:
        declared = int(trace_data.end.get("spans", -1))
        root_spans = sum(
            1 for s in trace_data.spans if s.pid == trace_data.root_pid
        )
        if declared >= 0 and declared != root_spans:
            findings.append(make_finding(
                "XAR005", trace_data.path,
                f"trace-end declares {declared} span(s) from the root "
                f"process but {root_spans} were parsed — records were "
                f"lost or foreign records merged in",
            ))
    counters = trace_data.counters()
    if counters:
        claimed_hits = sum(
            1 for s in trace_data.spans
            if s.attrs.get("cache") == "hit"
        )
        claimed_misses = sum(
            1 for s in trace_data.spans
            if s.attrs.get("cache") == "miss"
        )
        for label, claimed, counter in (
            ("hit", claimed_hits, counters.get("cache.hits", 0)),
            ("miss", claimed_misses, counters.get("cache.misses", 0)),
        ):
            if claimed > counter:
                findings.append(make_finding(
                    "XAR005", trace_data.path,
                    f"{claimed} span(s) claim cache={label} but the "
                    f"metrics registry counted only {counter} "
                    f"cache.{label}{'es' if label == 'miss' else 's'} — "
                    f"the two observers disagree about the same run",
                ))
    return findings


def run_xar_passes(
    profile: "ProfileData",
    clusters: Sequence["ClusterInfo"],
    dcfg: Optional[DCFG] = None,
    dropped: Sequence[int] = (),
    stage_keys: Optional[Dict[str, str]] = None,
    manifest_path: Optional[str] = None,
    cache: Optional["ArtifactCache"] = None,
    trace_data: Optional["TraceData"] = None,
) -> List[Finding]:
    """All cross-artifact passes over whatever artifacts are present."""
    findings: List[Finding] = []
    if dcfg is not None:
        findings.extend(check_bbv_universe(profile, dcfg))
    findings.extend(check_cluster_weights(profile, clusters, dropped))
    findings.extend(check_selection_boundaries(profile, clusters))
    if manifest_path is not None and stage_keys is not None:
        findings.extend(
            check_manifest_keys(manifest_path, stage_keys, cache)
        )
    if trace_data is not None:
        findings.extend(check_trace_counters(trace_data))
    return findings


def read_trace_for_audit(path: str) -> Optional["TraceData"]:
    """Best-effort bounded trace read for XAR005; ``None`` when unusable."""
    from ..obs.trace import DEFAULT_LIMITS, TraceError, read_trace

    try:
        return read_trace(path, DEFAULT_LIMITS)
    except (TraceError, OSError):
        return None


__all__ = [
    "check_bbv_universe",
    "check_cluster_weights",
    "check_selection_boundaries",
    "check_manifest_keys",
    "check_trace_counters",
    "run_xar_passes",
    "read_trace_for_audit",
]
