"""Multicore timing simulation (Sniper's role in the paper).

An interval-style out-of-order core model (plus an in-order variant), a
Pentium-M-like branch predictor, and a private-L1/L2, shared-L3 LRU cache
hierarchy with invalidation-based sharing, per Table I.  The simulator drives
the same thread generators as the functional engine (binary-driven
unconstrained simulation) or replays region pinballs under the recorded sync
order (checkpoint-driven constrained simulation).
"""

from .metrics import SimMetrics
from .cache import Cache
from .branch import BranchPredictor
from .hierarchy import MemoryHierarchy
from .core import CoreModel
from .mcsim import MultiCoreSimulator, RegionOfInterest, SimulationResult

__all__ = [
    "SimMetrics",
    "Cache",
    "BranchPredictor",
    "MemoryHierarchy",
    "CoreModel",
    "MultiCoreSimulator",
    "RegionOfInterest",
    "SimulationResult",
]
