"""Per-core timing model (interval-style, as in Sniper).

Rather than simulating every pipeline stage, each basic-block batch is
costed as: issue cycles (dispatch-width-bound, with an FP pressure term) +
branch misprediction penalties + memory stalls.  The out-of-order model
overlaps independent long-latency misses up to ``max_outstanding_misses``
(memory-level parallelism); the in-order model serializes them — that
difference is what Fig. 5b's OoO-vs-in-order portability experiment
exercises.

Consecutive same-line accesses inside a batch are collapsed before probing
the caches; this is exact under LRU (a line just touched is MRU) and keeps
Python probe counts proportional to distinct lines, not accesses.
"""

from __future__ import annotations

import numpy as np

from ..config import CoreConfig
from ..isa.blocks import BasicBlock
from .branch import BranchPredictor
from .hierarchy import L1, MemoryHierarchy

#: Issue-rate pressure per FP instruction (cycles), OoO vs in-order.
_FP_PRESSURE_OOO = 0.25
_FP_PRESSURE_INORDER = 1.0
#: Extra cycles an atomic RMW occupies the memory pipeline.
_ATOMIC_OVERHEAD = 8


class CoreModel:
    """One core: predictor + issue/memory cost model + local clock."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
    ) -> None:
        self.core_id = core_id
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = BranchPredictor()
        self.cycle = 0
        self.instructions = 0
        self.filtered_instructions = 0
        self.l1d_accesses = 0
        self._fp_pressure = (
            _FP_PRESSURE_OOO if config.out_of_order else _FP_PRESSURE_INORDER
        )

    # -- cost model ------------------------------------------------------------

    def execute_block(
        self,
        block: BasicBlock,
        start_index: int,
        repeat: int,
        warming: bool = False,
    ) -> int:
        """Execute ``repeat`` back-to-back instances of ``block``.

        Updates all microarchitectural state (caches, predictor) and the
        core's counters, advances the local clock, and returns the cycles
        consumed.  In ``warming`` mode state is still updated but time
        advances at one instruction per cycle (functional warming during
        fast-forward).
        """
        n = block.n_instr * repeat
        self.instructions += n
        if not block.image.is_library:
            self.filtered_instructions += n

        hierarchy = self.hierarchy
        core_id = self.core_id

        # Instruction fetch: probe each line the block spans once per batch.
        first_line = block.pc >> 6
        last_line = (block.pc + 4 * block.n_instr - 1) >> 6
        fetch_stall = 0
        for line in range(first_line, last_line + 1):
            if hierarchy.fetch(core_id, line) != L1:
                fetch_stall += hierarchy.latency(3)

        mispredicts = self.predictor.execute_block(block, repeat)

        mem_latency = 0
        dependent_latency = 0
        num_misses = 0
        for _slot, gen, is_write, dependent in block.mem_ops:
            self.l1d_accesses += repeat
            if repeat == 1:
                probe_lines = (gen.address_at(self.core_id, start_index) >> 6,)
            else:
                lines = (
                    gen.addresses(core_id, start_index, repeat).astype(np.int64)
                    >> 6
                )
                keep = np.empty(repeat, dtype=bool)
                keep[0] = True
                np.not_equal(lines[1:], lines[:-1], out=keep[1:])
                probe_lines = lines[keep].tolist()
            for line in probe_lines:
                level = hierarchy.access(core_id, int(line), is_write)
                if level != L1:
                    lat = hierarchy.latency(level)
                    num_misses += 1
                    if dependent:
                        dependent_latency += lat
                    else:
                        mem_latency += lat

        # Fast-forward ("warming") advances the clock with the same cost
        # model as detailed mode: the expensive state updates (cache probes,
        # predictor) must happen anyway for perfect warmup, and identical
        # timing keeps core clocks realistically aligned when a region
        # begins.  Region metrics are snapshot-differenced, so attribution
        # is unaffected.
        if self.config.out_of_order:
            mlp = min(self.config.max_outstanding_misses, max(1, num_misses))
            mem_stall = mem_latency / mlp + dependent_latency
        else:
            mem_stall = mem_latency + dependent_latency

        issue = n / self.config.dispatch_width
        issue += block.n_fp * repeat * self._fp_pressure
        issue += block.n_atomics * repeat * _ATOMIC_OVERHEAD
        cycles = int(
            issue
            + mispredicts * self.config.branch_mispredict_penalty
            + mem_stall
            + fetch_stall
        ) + 1
        self.cycle += cycles
        return cycles

    # -- address-stream note -----------------------------------------------------
    # Address streams are keyed by *core id* (== thread id in our pinned-
    # thread model), so functional and timing executions observe identical
    # streams for the same thread.
