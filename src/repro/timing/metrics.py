"""Simulation metrics containers."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class SimMetrics:
    """Counts accumulated by the timing simulator.

    ``cycles`` is the region's wall-clock in core cycles (global time), not a
    per-core sum; everything else is summed over cores.
    """

    cycles: int = 0
    instructions: int = 0
    filtered_instructions: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0

    # -- derived -------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def _mpki(self, events: int) -> float:
        return 1000.0 * events / self.instructions if self.instructions else 0.0

    @property
    def branch_mpki(self) -> float:
        return self._mpki(self.branch_mispredicts)

    @property
    def l1d_mpki(self) -> float:
        return self._mpki(self.l1d_misses)

    @property
    def l2_mpki(self) -> float:
        return self._mpki(self.l2_misses)

    @property
    def l3_mpki(self) -> float:
        return self._mpki(self.l3_misses)

    # -- arithmetic ------------------------------------------------------------

    def minus(self, other: "SimMetrics") -> "SimMetrics":
        """Counter-wise difference (for start/end snapshots of a region)."""
        return SimMetrics(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def plus(self, other: "SimMetrics") -> "SimMetrics":
        return SimMetrics(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def scaled(self, factor: float) -> "SimMetrics":
        """All counters scaled by ``factor`` (extrapolation weighting)."""
        return SimMetrics(
            **{
                f.name: type(getattr(self, f.name))(
                    getattr(self, f.name) * factor
                )
                for f in fields(self)
            }
        )
