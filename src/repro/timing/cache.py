"""A set-associative LRU cache.

Per-set LRU is implemented with insertion-ordered dicts: a hit reinserts the
tag (moving it to the MRU end); on overflow the LRU tag is the first key.
"""

from __future__ import annotations

from ..config import CacheConfig


class Cache:
    """One cache level (line-granular, tag-only)."""

    __slots__ = (
        "config", "num_sets", "assoc", "sets", "hits", "misses",
        "evictions", "invalidations", "_set_mask",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.sets = [dict() for _ in range(self.num_sets)]
        # num_sets is a power of two for all Table I geometries; fall back to
        # modulo otherwise.
        self._set_mask = (
            self.num_sets - 1 if (self.num_sets & (self.num_sets - 1)) == 0
            else None
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _set_index(self, line: int) -> int:
        if self._set_mask is not None:
            return line & self._set_mask
        return line % self.num_sets

    def access(self, line: int) -> bool:
        """Access ``line`` (line-number, i.e. address >> log2(line size)).

        Returns True on hit.  On miss the line is installed, evicting LRU.
        """
        s = self.sets[self._set_index(line)]
        tag = line
        if tag in s:
            del s[tag]
            s[tag] = True
            self.hits += 1
            return True
        self.misses += 1
        s[tag] = True
        if len(s) > self.assoc:
            del s[next(iter(s))]
            self.evictions += 1
        return False

    def contains(self, line: int) -> bool:
        return line in self.sets[self._set_index(line)]

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present (coherence invalidation)."""
        s = self.sets[self._set_index(line)]
        if line in s:
            del s[line]
            self.invalidations += 1
            return True
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.config.name}, sets={self.num_sets}, "
            f"assoc={self.assoc}, hits={self.hits}, misses={self.misses})"
        )
