"""The multicore simulator: binary-driven and checkpoint-driven modes.

**Binary-driven unconstrained** (:meth:`MultiCoreSimulator.run_binary`): the
timing model owns thread progress.  Threads are advanced in simulated-time
order; barriers, locks, and dynamic scheduling are resolved at simulated
time, so spin-loop instruction counts and chunk assignments follow the
*target* microarchitecture — the paper's preferred mode (Sec. II "How to
simulate").  Regions of interest are delimited by ``(PC, count)`` markers
(LoopPoint), global instruction counts (the naive SimPoint baseline), or
barrier ordinals (BarrierPoint).  The simulator fast-forwards with
functional warming (caches and predictor stay warm — the paper's "perfect
warmup") and measures detailed metrics inside each region; passing several
disjoint regions measures all of them in one sweep, which is equivalent to
warming each region from program start.

**Checkpoint-driven constrained** (:meth:`MultiCoreSimulator.run_pinball`):
replays a (region) pinball's logs while *enforcing the recorded sync order*.
Recorded spin iterations are re-executed verbatim and threads are stalled
artificially to honour ``gseq`` order — reproducing the distortions the
paper measures in Sec. V-A.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import DeadlockError, RegionError, SimulationError
from ..exec_engine.events import (
    BarrierWait,
    BlockExec,
    ChunkRequest,
    LockAcquire,
    LockRelease,
    Reduce,
    SingleRequest,
)
from ..isa.blocks import BasicBlock
from ..isa.image import Program
from ..pinplay.pinball import Pinball, RegionPinball
from ..policy import SpinParams, WaitPolicy
from ..profiling.markers import Marker, MarkerTracker
from ..runtime.omp import OmpRuntime
from ..runtime.thread import ThreadProgram
from .core import CoreModel
from .hierarchy import MemoryHierarchy
from .metrics import SimMetrics

_RUNNABLE = 0
_BLOCKED = 1
_DONE = 2


@dataclass(frozen=True)
class RegionOfInterest:
    """One simulation region, delimited in one of three coordinate systems.

    Exactly one family of boundaries should be used per region:

    * ``start``/``end`` — LoopPoint ``(PC, count)`` markers;
    * ``start_instr``/``end_instr`` — global instruction counts (the naive
      SimPoint adaptation of Sec. II);
    * ``start_barrier``/``end_barrier`` — global barrier-release ordinals
      (BarrierPoint).

    A missing start means "program start"; a missing end means "program
    end".
    """

    region_id: int
    start: Optional[Marker] = None
    end: Optional[Marker] = None
    start_instr: Optional[int] = None
    end_instr: Optional[int] = None
    start_barrier: Optional[int] = None
    end_barrier: Optional[int] = None

    @property
    def starts_at_origin(self) -> bool:
        return (
            self.start is None
            and self.start_instr is None
            and self.start_barrier is None
        )

    @property
    def open_ended(self) -> bool:
        return (
            self.end is None
            and self.end_instr is None
            and self.end_barrier is None
        )


@dataclass
class SimulationResult:
    """Detailed metrics of one region (or the whole run)."""

    region_id: int
    metrics: SimMetrics
    start_cycle: int
    end_cycle: int

    @property
    def runtime_cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class _SimThread:
    __slots__ = ("tid", "gen", "state", "response", "park_cycle")

    def __init__(self, tid: int, gen) -> None:
        self.tid = tid
        self.gen = gen
        self.state = _RUNNABLE
        self.response = None
        self.park_cycle = 0


class _SimLock:
    __slots__ = ("owner", "waiters")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.waiters: List[Tuple[int, int]] = []  # (request_cycle, tid)


class _NullController:
    """A no-op stand-in for the region controller (ELFie execution)."""

    detailed = True

    def post_barrier_release(self) -> None:
        pass


class _RegionController:
    """Tracks region transitions during a binary-driven sweep.

    The simulator reports marker executions, instruction progress, and
    barrier releases; the controller flips between fast-forward and detailed
    mode and snapshots metrics at each boundary.
    """

    def __init__(
        self,
        sim: "MultiCoreSimulator",
        rois: Sequence[RegionOfInterest],
        nthreads: int,
    ):
        self._sim = sim
        self._nthreads = nthreads
        self.rois = list(rois)
        for i, roi in enumerate(self.rois[1:], start=1):
            if roi.starts_at_origin:
                raise RegionError(
                    f"region {roi.region_id} (position {i}) may not start at "
                    f"program origin"
                )
        marker_blocks = []
        for roi in self.rois:
            for marker in (roi.start, roi.end):
                if marker is not None:
                    marker_blocks.append(sim.program.block_at(marker.pc))
        self.tracker = MarkerTracker(marker_blocks) if marker_blocks else None
        self.global_instructions = 0
        self.barrier_releases = 0
        self.results: List[SimulationResult] = []
        self._idx = 0
        self.detailed = self.rois[0].starts_at_origin
        self._start_snapshot = sim._snapshot() if self.detailed else None
        self._start_cycle = 0

    @property
    def finished(self) -> bool:
        return self._idx >= len(self.rois)

    # -- boundary events --------------------------------------------------------
    #
    # Region time is read from the *global* clock: the maximum core cycle.
    # It is monotone at every boundary, so adjacent regions telescope exactly
    # and the sum of all slices equals the whole run — a per-core clock would
    # leak inter-core drift (which, at reproduction scale, is not negligible
    # relative to a slice) into every region measurement.

    def _global_cycle(self) -> int:
        return max(
            core.cycle for core in self._sim.cores[: self._nthreads]
        )

    def _begin(self) -> None:
        self.detailed = True
        self._start_snapshot = self._sim._snapshot()
        self._start_cycle = self._global_cycle()

    def _finish(self) -> None:
        roi = self.rois[self._idx]
        end_cycle = self._global_cycle()
        metrics = self._sim._snapshot().minus(self._start_snapshot)
        metrics.cycles = max(1, end_cycle - self._start_cycle)
        self.results.append(
            SimulationResult(
                region_id=roi.region_id,
                metrics=metrics,
                start_cycle=self._start_cycle,
                end_cycle=end_cycle,
            )
        )
        self.detailed = False
        self._idx += 1

    def pre_block(self, block: BasicBlock, repeat: int) -> None:
        """Called before every block execution."""
        before = None
        if self.tracker is not None:
            before = self.tracker.record(block.bid, repeat)
        while not self.finished:
            roi = self.rois[self._idx]
            if not self.detailed:
                if roi.start is not None:
                    if before is None:
                        return
                    m = roi.start
                    # Trigger when the marker count is reached *or passed*:
                    # under racing threads the global counts of different
                    # marker PCs may cross in a different order than during
                    # profiling (the paper's region-stability caveat), so a
                    # strict equality could wait forever.
                    if m.pc == block.pc and before + repeat > m.count:
                        self._begin()
                    else:
                        return
                elif roi.start_instr is not None:
                    if self.global_instructions >= roi.start_instr:
                        self._begin()
                    else:
                        return
                elif roi.start_barrier is not None:
                    return  # barrier starts handled in post_barrier
                else:
                    return
            # Detailed: check whether this same point ends the region.
            roi = self.rois[self._idx]
            if roi.end is not None:
                if before is None:
                    return
                m = roi.end
                if m.pc == block.pc and before + repeat > m.count:
                    self._finish()
                    continue  # same marker may open the next region
                return
            if roi.end_instr is not None:
                if self.global_instructions >= roi.end_instr:
                    self._finish()
                    continue
                return
            return  # barrier-delimited or open end

    def post_block(self, n_instructions: int) -> None:
        self.global_instructions += n_instructions

    def post_barrier_release(self) -> None:
        """Called after every barrier release (all threads through)."""
        self.barrier_releases += 1
        while not self.finished:
            roi = self.rois[self._idx]
            if (
                self.detailed
                and roi.end_barrier is not None
                and self.barrier_releases >= roi.end_barrier
            ):
                self._finish()
                continue
            if (
                not self.detailed
                and roi.start_barrier is not None
                and self.barrier_releases >= roi.start_barrier
            ):
                self._begin()
                continue
            return

    def finalize(self, whole_run: bool, clip_at_end: bool = False) -> None:
        if self.finished:
            return
        roi = self.rois[self._idx]
        if self.detailed and (roi.open_ended or clip_at_end):
            self._finish()
            return
        if self.detailed or not roi.open_ended:
            if clip_at_end:
                return
            raise RegionError(
                f"region {roi.region_id}: boundaries never reached "
                f"(detailed={self.detailed})"
            )
        if whole_run:
            raise RegionError("whole-run simulation never started detail")


class MultiCoreSimulator:
    """A Sniper-like multicore simulator over the repro program model."""

    def __init__(
        self,
        program: Program,
        system: SystemConfig,
        omp: OmpRuntime,
        spin: Optional[SpinParams] = None,
    ) -> None:
        self.program = program
        self.system = system
        self.omp = omp
        self.spin = spin or SpinParams()
        self.hierarchy = MemoryHierarchy(system)
        self.cores = [
            CoreModel(i, system.core, self.hierarchy)
            for i in range(system.num_cores)
        ]
        self.exec_counts = [
            [0] * program.num_blocks for _ in range(system.num_cores)
        ]

    # -- shared helpers -----------------------------------------------------

    def _snapshot(self) -> SimMetrics:
        m = SimMetrics()
        for core in self.cores:
            m.instructions += core.instructions
            m.filtered_instructions += core.filtered_instructions
            m.branches += core.predictor.branches
            m.branch_mispredicts += core.predictor.mispredicts
            m.l1d_accesses += core.l1d_accesses
        for i in range(self.system.num_cores):
            stats = self.hierarchy.core_stats(i)
            m.l1i_misses += stats["l1i_misses"]
            m.l1d_misses += stats["l1d_misses"]
            m.l2_misses += stats["l2_misses"]
        m.l3_misses = self.hierarchy.l3_misses
        return m

    def _core_snapshot(self, tid: int) -> Dict[str, int]:
        """One core's contribution to the (per-core) SimMetrics counters."""
        core = self.cores[tid]
        stats = self.hierarchy.core_stats(tid)
        return {
            "instructions": core.instructions,
            "filtered_instructions": core.filtered_instructions,
            "branches": core.predictor.branches,
            "branch_mispredicts": core.predictor.mispredicts,
            "l1d_accesses": core.l1d_accesses,
            "l1i_misses": stats["l1i_misses"],
            "l1d_misses": stats["l1d_misses"],
            "l2_misses": stats["l2_misses"],
        }

    def _exec(self, tid: int, block: BasicBlock, repeat: int, warming: bool) -> int:
        start = self.exec_counts[tid][block.bid]
        self.exec_counts[tid][block.bid] = start + repeat
        return self.cores[tid].execute_block(block, start, repeat, warming)

    def _spin_fill(self, tid: int, duration: int, warming: bool) -> None:
        """Fill a wait of ``duration`` cycles with spin-loop iterations."""
        iters = max(1, duration // self.spin.cycles_per_iteration)
        self._exec(tid, self.omp.spin_block, iters, warming)

    # ======================================================================
    # Binary-driven unconstrained simulation
    # ======================================================================

    def run_binary(
        self,
        thread_program: ThreadProgram,
        nthreads: int,
        wait_policy: WaitPolicy,
        regions: Optional[Sequence[RegionOfInterest]] = None,
        max_events: Optional[int] = None,
        clip_at_end: bool = False,
    ) -> List[SimulationResult]:
        """Simulate the program, measuring each region (whole run if None).

        Regions must be disjoint and given in execution order; the simulator
        performs one sweep, warming functionally between regions.

        ``clip_at_end`` tolerates region boundaries the execution never
        reaches (regions past program end are dropped; an open detailed
        region is closed at termination).  The naive instruction-count
        baseline needs this: its profiled coordinates routinely overrun the
        simulated execution, which is precisely its failure mode.
        """
        if nthreads > self.system.num_cores:
            raise SimulationError(
                f"{nthreads} threads need {nthreads} cores, system has "
                f"{self.system.num_cores}"
            )
        whole_run = not regions
        if whole_run:
            regions = [RegionOfInterest(region_id=-1)]
        ctl = _RegionController(self, regions, nthreads)

        threads = [
            _SimThread(tid, thread_program.thread_main(tid, nthreads))
            for tid in range(nthreads)
        ]
        cores = self.cores
        active = wait_policy is WaitPolicy.ACTIVE

        barriers: Dict[int, List[Tuple[int, int]]] = {}
        locks: Dict[int, _SimLock] = {}
        chunks: Dict[int, int] = {}
        singles: set = set()
        num_events = 0

        while not ctl.finished:
            best = None
            best_cycle = None
            for t in threads:
                if t.state == _RUNNABLE:
                    c = cores[t.tid].cycle
                    if best_cycle is None or c < best_cycle:
                        best, best_cycle = t, c
            if best is None:
                if all(t.state == _DONE for t in threads):
                    break
                blocked = [t.tid for t in threads if t.state == _BLOCKED]
                raise DeadlockError(
                    f"timing sim: all live threads blocked {blocked}"
                )

            thread = best
            tid = thread.tid
            # Single-event turns keep inter-core drift at one block batch,
            # which bounds region-boundary jitter on the global clock.
            for _burst in range(1):
                if thread.state != _RUNNABLE or ctl.finished:
                    break
                try:
                    event = thread.gen.send(thread.response)
                except StopIteration:
                    thread.state = _DONE
                    break
                thread.response = None
                num_events += 1
                etype = type(event)
                if etype is BlockExec:
                    ctl.pre_block(event.block, event.repeat)
                    if ctl.finished:
                        break
                    self._exec(tid, event.block, event.repeat, not ctl.detailed)
                    ctl.post_block(event.block.n_instr * event.repeat)
                elif etype is BarrierWait:
                    self._handle_barrier_timed(
                        thread, event.barrier_id, barriers, threads, active, ctl
                    )
                elif etype is LockAcquire:
                    self._handle_lock_acquire_timed(
                        thread, event.lock_id, locks, active, ctl.detailed
                    )
                elif etype is LockRelease:
                    self._handle_lock_release_timed(
                        thread, event.lock_id, locks, threads, active,
                        ctl.detailed,
                    )
                elif etype is ChunkRequest:
                    cursor = chunks.get(event.loop_id, 0)
                    self._exec(tid, self.omp.chunk_fetch, 1, not ctl.detailed)
                    if cursor >= event.total_iters:
                        thread.response = -1
                    else:
                        thread.response = cursor
                        chunks[event.loop_id] = cursor + event.chunk_size
                elif etype is SingleRequest:
                    granted = event.single_id not in singles
                    if granted:
                        singles.add(event.single_id)
                    thread.response = granted
                elif etype is Reduce:
                    self._exec(tid, self.omp.reduce_combine, 1, not ctl.detailed)
                else:
                    raise SimulationError(f"unknown event {event!r}")
                if max_events is not None and num_events > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")

        ctl.finalize(whole_run, clip_at_end)
        if len(ctl.results) != len(ctl.rois) and not clip_at_end:
            raise RegionError(
                f"{len(ctl.rois) - len(ctl.results)} region(s) never reached"
            )
        return ctl.results

    # -- timed synchronization (binary-driven) ------------------------------

    def _handle_barrier_timed(
        self,
        thread: _SimThread,
        barrier_id: int,
        barriers: Dict[int, List[Tuple[int, int]]],
        threads: List[_SimThread],
        active: bool,
        ctl: _RegionController,
    ) -> None:
        tid = thread.tid
        cores = self.cores
        warming = not ctl.detailed
        self._exec(tid, self.omp.barrier_enter, 1, warming)
        arrivals = barriers.setdefault(barrier_id, [])
        arrivals.append((cores[tid].cycle, tid))
        if len(arrivals) < len(threads):
            thread.state = _BLOCKED
            thread.park_cycle = cores[tid].cycle
            if not active:
                self._exec(tid, self.omp.futex_wait, 1, warming)
            return
        # Last arrival releases everyone.
        release = max(cycle for cycle, _t in arrivals)
        for arrive_cycle, other_tid in arrivals:
            other = threads[other_tid]
            if other_tid != tid:
                wait = release - arrive_cycle
                if active:
                    if wait > 0:
                        self._spin_fill(other_tid, wait, warming)
                    cores[other_tid].cycle = release + self.spin.spin_resume_cycles
                else:
                    self._exec(other_tid, self.omp.futex_wake, 1, warming)
                    cores[other_tid].cycle = release + self.spin.futex_wake_cycles
                other.state = _RUNNABLE
            self._exec(other_tid, self.omp.barrier_exit, 1, warming)
        del barriers[barrier_id]
        ctl.post_barrier_release()

    def _handle_lock_acquire_timed(
        self,
        thread: _SimThread,
        lock_id: int,
        locks: Dict[int, _SimLock],
        active: bool,
        detailed: bool,
    ) -> None:
        tid = thread.tid
        warming = not detailed
        lock = locks.setdefault(lock_id, _SimLock())
        if lock.owner is None:
            lock.owner = tid
            self._exec(tid, self.omp.lock_acquire, 1, warming)
            return
        lock.waiters.append((self.cores[tid].cycle, tid))
        thread.state = _BLOCKED
        thread.park_cycle = self.cores[tid].cycle
        if not active:
            self._exec(tid, self.omp.futex_wait, 1, warming)

    def _handle_lock_release_timed(
        self,
        thread: _SimThread,
        lock_id: int,
        locks: Dict[int, _SimLock],
        threads: List[_SimThread],
        active: bool,
        detailed: bool,
    ) -> None:
        tid = thread.tid
        warming = not detailed
        lock = locks.get(lock_id)
        if lock is None or lock.owner != tid:
            raise SimulationError(
                f"thread {tid} released lock {lock_id} it does not own"
            )
        self._exec(tid, self.omp.lock_release, 1, warming)
        release = self.cores[tid].cycle
        if not lock.waiters:
            lock.owner = None
            return
        lock.waiters.sort()
        request_cycle, next_tid = lock.waiters.pop(0)
        lock.owner = next_tid
        waiter = threads[next_tid]
        wait = max(0, release - request_cycle)
        if active:
            if wait > 0:
                self._spin_fill(next_tid, wait, warming)
            self.cores[next_tid].cycle = (
                max(release, request_cycle) + self.spin.spin_resume_cycles
            )
        else:
            self._exec(next_tid, self.omp.futex_wake, 1, warming)
            self.cores[next_tid].cycle = release + self.spin.futex_wake_cycles
        self._exec(next_tid, self.omp.lock_acquire, 1, warming)
        waiter.state = _RUNNABLE

    # ======================================================================
    # ELFie execution (unconstrained executable checkpoints)
    # ======================================================================

    def run_elfie(self, elfie) -> SimulationResult:
        """Execute an :class:`~repro.pinplay.elfie.ELFie` unconstrained.

        The ELFie's reconstructed thread code runs under the live
        synchronization semantics (barriers, locks re-resolved by the
        timing model), starting from the checkpointed execution counters.
        Warmup entries run with functional warming; metrics cover the
        detail portion, per-core-snapshotted at each thread's crossing.
        """
        nthreads = elfie.nthreads
        if nthreads > self.system.num_cores:
            raise SimulationError(
                f"ELFie has {nthreads} threads, system has "
                f"{self.system.num_cores} cores"
            )
        if elfie.start_exec_counts:
            for tid in range(nthreads):
                self.exec_counts[tid] = list(elfie.start_exec_counts[tid])

        threads = [
            _SimThread(tid, elfie.thread_main(self.program, tid))
            for tid in range(nthreads)
        ]
        cores = self.cores
        progress = [0] * nthreads
        detail_at = list(elfie.detail_positions) if elfie.detail_positions \
            else [0] * nthreads
        in_detail = [progress[t] >= detail_at[t] for t in range(nthreads)]
        core_snaps = [
            self._core_snapshot(t) if in_detail[t] else None
            for t in range(nthreads)
        ]
        l3_snap = self.hierarchy.l3_misses if any(in_detail) else None
        detail_started = all(in_detail)
        start_cycle = 0

        barriers: Dict[int, List[Tuple[int, int]]] = {}
        locks: Dict[int, _SimLock] = {}
        singles: set = set()
        # ELFie barriers involve only this region's threads; use a dummy
        # controller-free barrier handler via a local class:
        ctl_stub = _NullController()

        while True:
            best = None
            best_cycle = None
            for t in threads:
                if t.state == _RUNNABLE:
                    c = cores[t.tid].cycle
                    if best_cycle is None or c < best_cycle:
                        best, best_cycle = t, c
            if best is None:
                if all(t.state == _DONE for t in threads):
                    break
                # Clipped region edges can leave some threads waiting at a
                # final barrier that others never reach; end gracefully.
                break

            thread = best
            tid = thread.tid
            try:
                event = thread.gen.send(thread.response)
            except StopIteration:
                thread.state = _DONE
                continue
            thread.response = None
            warming = not in_detail[tid]
            etype = type(event)
            if etype is BlockExec:
                self._exec(tid, event.block, event.repeat, warming)
            elif etype is BarrierWait:
                self._handle_barrier_timed(
                    thread, event.barrier_id, barriers, threads,
                    active=False, ctl=ctl_stub,
                )
            elif etype is LockAcquire:
                self._handle_lock_acquire_timed(
                    thread, event.lock_id, locks, False, not warming
                )
            elif etype is LockRelease:
                self._handle_lock_release_timed(
                    thread, event.lock_id, locks, threads, False, not warming
                )
            elif etype is SingleRequest:
                granted = event.single_id not in singles
                if granted:
                    singles.add(event.single_id)
                thread.response = granted
            else:
                raise SimulationError(f"unexpected ELFie event {event!r}")
            progress[tid] += 1
            if not in_detail[tid] and progress[tid] >= detail_at[tid]:
                in_detail[tid] = True
                core_snaps[tid] = self._core_snapshot(tid)
                if l3_snap is None:
                    l3_snap = self.hierarchy.l3_misses
                if not detail_started and all(in_detail):
                    detail_started = True
                    start_cycle = max(
                        cores[i].cycle for i in range(nthreads)
                    )

        if not detail_started:
            raise RegionError("ELFie never reached its detail portion")
        end_cycle = max(cores[i].cycle for i in range(nthreads))
        metrics = SimMetrics()
        for t in range(nthreads):
            now = self._core_snapshot(t)
            snap = core_snaps[t]
            for key, value in now.items():
                setattr(metrics, key, getattr(metrics, key) + value - snap[key])
        metrics.l3_misses = self.hierarchy.l3_misses - (l3_snap or 0)
        metrics.cycles = max(1, end_cycle - start_cycle)
        return SimulationResult(
            region_id=elfie.region_id,
            metrics=metrics,
            start_cycle=start_cycle,
            end_cycle=end_cycle,
        )

    # ======================================================================
    # Checkpoint-driven constrained simulation
    # ======================================================================

    def run_pinball(self, pinball: Pinball) -> SimulationResult:
        """Constrained simulation of a (region) pinball.

        The recorded sync order is enforced exactly: a thread whose next
        sync action is not yet due stalls (its recorded spin iterations, if
        any, were already captured in the logs).  For a
        :class:`RegionPinball`, warmup entries run with functional warming
        and metrics cover only the detail portion.
        """
        nthreads = pinball.nthreads
        if nthreads > self.system.num_cores:
            raise SimulationError(
                f"pinball has {nthreads} threads, system has "
                f"{self.system.num_cores} cores"
            )
        logs = pinball.logs
        is_region = isinstance(pinball, RegionPinball)
        if is_region and pinball.start_exec_counts:
            for tid in range(nthreads):
                self.exec_counts[tid] = list(pinball.start_exec_counts[tid])
        detail_at = (
            list(pinball.detail_positions) if is_region and
            pinball.detail_positions else [0] * nthreads
        )

        pos = [0] * nthreads
        ends = [len(log) for log in logs]
        next_gseq = 0
        # PinPlay enforces the recorded order of *conflicting* accesses (the
        # per-address .race dependencies), not one global total order; the
        # time coupling is therefore per synchronization object, while the
        # gseq gate still fixes the global interleaving of sync actions.
        last_sync_cycle: Dict[tuple, int] = {}
        cores = self.cores
        program = self.program
        in_detail = [pos[t] >= detail_at[t] for t in range(nthreads)]
        # Each core's counters are snapshotted when *its* thread crosses
        # into the detail portion — threads drift during constrained replay,
        # so a single global snapshot would misattribute work near the
        # boundary.  The shared L3 is snapshotted at the first crossing.
        core_snaps: List[Optional[Dict[str, int]]] = [
            self._core_snapshot(t) if in_detail[t] else None
            for t in range(nthreads)
        ]
        l3_snap = self.hierarchy.l3_misses if any(in_detail) else None
        detail_started = all(in_detail)
        start_cycle = 0

        live = set(t for t in range(nthreads) if pos[t] < ends[t])
        while live:
            best = None
            best_cycle = None
            for t in live:
                entry = logs[t][pos[t]]
                if entry[0] == "s" and entry[4] != next_gseq:
                    continue
                c = cores[t].cycle
                if best_cycle is None or c < best_cycle:
                    best, best_cycle = t, c
            if best is None:
                raise DeadlockError(f"constrained sim stuck at gseq {next_gseq}")
            t = best
            entry = logs[t][pos[t]]
            if entry[0] == "b":
                block = program.blocks[entry[1]]
                self._exec(t, block, entry[2], not in_detail[t])
            else:
                # The artificial stall: this thread may have been ready long
                # before its turn at this object in the recorded order.
                key = (entry[1], entry[2])
                due = last_sync_cycle.get(key, 0)
                if cores[t].cycle < due:
                    cores[t].cycle = due
                next_gseq += 1
                last_sync_cycle[key] = cores[t].cycle
            pos[t] += 1
            if not in_detail[t] and pos[t] >= detail_at[t]:
                in_detail[t] = True
                core_snaps[t] = self._core_snapshot(t)
                if l3_snap is None:
                    l3_snap = self.hierarchy.l3_misses
                if not detail_started and all(in_detail):
                    detail_started = True
                    start_cycle = max(cores[i].cycle for i in range(nthreads))
            if pos[t] >= ends[t]:
                live.discard(t)

        if not detail_started:
            raise RegionError("pinball never reached its detail portion")
        end_cycle = max(cores[i].cycle for i in range(nthreads))
        metrics = SimMetrics()
        for t in range(nthreads):
            now = self._core_snapshot(t)
            snap = core_snaps[t]
            for key, value in now.items():
                setattr(metrics, key, getattr(metrics, key) + value - snap[key])
        metrics.l3_misses = self.hierarchy.l3_misses - (l3_snap or 0)
        metrics.cycles = max(1, end_cycle - start_cycle)
        return SimulationResult(
            region_id=getattr(pinball, "region_id", -1),
            metrics=metrics,
            start_cycle=start_cycle,
            end_cycle=end_cycle,
        )
