"""The cache hierarchy: private L1-I/L1-D/L2 per core, shared L3.

Sharing is tracked by a presence directory over private caches: a write
invalidates every other core's private copies, so producer-consumer and
falsely-shared lines (the sync page!) bounce between cores with L3-latency
transfers — the behaviour that couples thread placement to memory timing.
"""

from __future__ import annotations

from typing import Dict, Set

from ..config import SystemConfig
from .cache import Cache

#: Hit levels returned by :meth:`MemoryHierarchy.access`.
L1 = 1
L2 = 2
L3 = 3
MEM = 4


class MemoryHierarchy:
    """All caches of the simulated system plus a presence directory."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        n = config.num_cores
        self.l1i = [Cache(config.l1i) for _ in range(n)]
        self.l1d = [Cache(config.l1d) for _ in range(n)]
        self.l2 = [Cache(config.l2) for _ in range(n)]
        self.l3 = Cache(config.l3)
        #: line -> set of cores with a private copy.
        self._directory: Dict[int, Set[int]] = {}
        mem = config.memory
        self._latency = {
            L1: config.l1d.hit_latency,
            L2: mem.l2_latency,
            L3: mem.l3_latency,
            MEM: mem.dram_latency,
        }

    def latency(self, level: int) -> int:
        return self._latency[level]

    def access(self, core: int, line: int, is_write: bool) -> int:
        """One data access; returns the level that served it.

        Installs the line in the core's private caches and maintains the
        presence directory (writes invalidate remote private copies).
        """
        if is_write:
            sharers = self._directory.get(line)
            if sharers:
                for other in sharers:
                    if other != core:
                        self.l1d[other].invalidate(line)
                        self.l2[other].invalidate(line)
                if sharers - {core}:
                    self._directory[line] = {core}

        if self.l1d[core].access(line):
            level = L1
        elif self.l2[core].access(line):
            level = L2
        elif self.l3.access(line):
            level = L3
        else:
            level = MEM
        sharers = self._directory.setdefault(line, set())
        sharers.add(core)
        return level

    def fetch(self, core: int, line: int) -> int:
        """Instruction fetch; L1-I backed by the shared L3."""
        if self.l1i[core].access(line):
            return L1
        if self.l3.access(line):
            return L3
        return MEM

    # -- statistics -----------------------------------------------------------

    def core_stats(self, core: int) -> Dict[str, int]:
        return {
            "l1i_misses": self.l1i[core].misses,
            "l1d_accesses": self.l1d[core].accesses,
            "l1d_misses": self.l1d[core].misses,
            "l2_misses": self.l2[core].misses,
        }

    @property
    def l3_misses(self) -> int:
        return self.l3.misses
