"""Branch predictor model (Pentium-M-like bimodal core).

Two mechanisms, both deterministic and batch-friendly:

* **Loop branches** keep an exact per-PC 2-bit saturating counter.  A batch
  of ``R`` executions of a self-loop is ``R-1`` taken outcomes followed by
  one not-taken; the resulting mispredict count has a closed form in the
  counter's starting state, so batches cost O(1).

* **Data-dependent branches** (probability ``p`` of being taken) use the
  2-bit counter's *stationary* mispredict rate under i.i.d. outcomes,
  applied with a per-PC fractional-remainder accumulator so counts are
  deterministic and exact in expectation.

The real Pentium M adds a global/loop predictor on top of its bimodal
arrays; we document the simplification in DESIGN.md — what matters for the
paper's figures is that mispredict counts respond to loop structure and
data-dependent branches consistently across full-app and region runs.
"""

from __future__ import annotations

from typing import Dict

from ..isa.blocks import BRANCH_COND, BRANCH_LOOP, BasicBlock


def stationary_mispredict_rate(p: float) -> float:
    """Steady-state mispredict rate of a 2-bit counter under Bernoulli(p).

    Solves the 4-state Markov chain in closed form.  ``p`` is the taken
    probability; states 0/1 predict not-taken, 2/3 predict taken.
    """
    if p <= 0.0 or p >= 1.0:
        return 0.0
    q = 1.0 - p
    # Stationary distribution of the birth-death chain with up-prob p:
    # pi_k ~ (p/q)^k, k = 0..3.
    r = p / q
    weights = [1.0, r, r * r, r * r * r]
    total = sum(weights)
    pi = [w / total for w in weights]
    # States 0,1 mispredict when taken (prob p); states 2,3 when not (q).
    return (pi[0] + pi[1]) * p + (pi[2] + pi[3]) * q


def _loop_batch_mispredicts(state: int, repeat: int) -> tuple:
    """Mispredicts and final counter state for a batched self-loop.

    Outcome stream: ``repeat - 1`` taken, then one not-taken (the batch's
    loop exit).  For ``repeat == 1`` the single outcome is taken (an outer
    loop header continuing to iterate).
    """
    mispredicts = 0
    takens = repeat - 1 if repeat > 1 else 1
    # Taken run: counters below 2 mispredict until they saturate upward.
    if state < 2:
        wrong = min(2 - state, takens)
        mispredicts += wrong
        state = min(3, state + takens)
    else:
        state = min(3, state + takens)
    if repeat > 1:
        # The closing not-taken outcome.
        if state >= 2:
            mispredicts += 1
        state = max(0, state - 1)
    return mispredicts, state


class BranchPredictor:
    """Per-core branch predictor state."""

    def __init__(self) -> None:
        # Weakly-taken initial state, per PC.
        self._counters: Dict[int, int] = {}
        # Fractional mispredict remainders for probabilistic branches.
        self._remainders: Dict[int, float] = {}
        self._rate_cache: Dict[float, float] = {}
        self.branches = 0
        self.mispredicts = 0

    def execute_block(self, block: BasicBlock, repeat: int) -> int:
        """Account for all branches of ``repeat`` executions of ``block``.

        Returns the number of mispredicts incurred (already added to the
        running counters).
        """
        kind = block.branch.kind
        missed = 0
        # Non-terminator branches inside the block: unconditional/call-like,
        # modelled as always predicted correctly (BTB hit).
        extra = block.n_branches
        if kind in (BRANCH_LOOP, BRANCH_COND):
            extra -= 1
        if extra > 0:
            self.branches += extra * repeat

        if kind == BRANCH_LOOP:
            pc = block.pc
            state = self._counters.get(pc, 2)
            m, state = _loop_batch_mispredicts(state, repeat)
            self._counters[pc] = state
            self.branches += repeat
            missed += m
        elif kind == BRANCH_COND:
            pc = block.pc
            prob = block.cond_prob or 0.0
            rate = self._rate_cache.get(prob)
            if rate is None:
                rate = stationary_mispredict_rate(prob)
                self._rate_cache[prob] = rate
            acc = self._remainders.get(pc, 0.0) + rate * repeat
            m = int(acc)
            self._remainders[pc] = acc - m
            self.branches += repeat
            missed += m
        self.mispredicts += missed
        return missed

    def reset_stats(self) -> None:
        self.branches = 0
        self.mispredicts = 0
