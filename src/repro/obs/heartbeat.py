"""Live progress heartbeats: a tiny sidecar file a human can tail mid-run.

Span traces explain a run *after* it finishes (spans are written on
close); a multi-minute replay in flight looks identical to a hung one.
The heartbeat fills that gap: the engine and the parallel executor
periodically overwrite one small JSON document — events delivered,
events/sec, regions done/total, an ETA — next to the trace file, and
``repro-obs tail`` renders it while the run is still going.

Writes are atomic (temp file + ``os.replace`` in the same directory, the
store's publish discipline), so a reader never sees a torn document; the
file is *overwritten*, not appended — it is a gauge, not a journal (the
run-history store is the journal).  Staleness is detectable from the
document itself: every beat carries a wall-clock stamp, so a reader (or
lint rule OBS004) compares it against file-read time / the trace's end.

Instrumented code uses the same discipline as the tracer seams: ask
:func:`active_heartbeat` once, skip everything when it returns ``None``.
Beats are rate-limited inside :meth:`Heartbeat.beat` (default 0.25 s),
and the engine additionally counter-gates its calls, so the hot loop
pays one integer decrement per scheduling round when enabled and a
single ``is None`` check when not.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Optional

#: Heartbeat document schema marker.
HEARTBEAT_SCHEMA = "repro-heartbeat/1"

#: A beat older than this (seconds) marks the run as stalled in ``tail``
#: and, post-mortem, in lint rule OBS004.
DEFAULT_STALL_AFTER_S = 30.0


def heartbeat_path_for(trace_path: str) -> str:
    """The sidecar path for a trace file (``X.trace.jsonl`` ->
    ``X.heartbeat.json``; anything else gets ``.heartbeat.json``
    appended)."""
    suffix = ".trace.jsonl"
    if trace_path.endswith(suffix):
        return trace_path[: -len(suffix)] + ".heartbeat.json"
    return trace_path + ".heartbeat.json"


class Heartbeat:
    """Rate-limited atomic writer of one run's progress document."""

    __slots__ = (
        "path", "interval_s", "_seq", "_t0", "_last_write",
        "_events", "_events_at_last", "_rate", "_regions_done",
        "_regions_total", "_phase", "_state",
    )

    def __init__(self, path: str, interval_s: float = 0.25) -> None:
        self.path = str(path)
        self.interval_s = float(interval_s)
        self._seq = 0
        self._t0 = time.monotonic()
        self._last_write = 0.0
        self._events = 0
        self._events_at_last = 0
        self._rate = 0.0
        self._regions_done = 0
        self._regions_total = 0
        self._phase = "start"
        self._state = "running"
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._write(force=True)

    # -- update entry points ------------------------------------------------

    def beat(
        self,
        events: Optional[int] = None,
        phase: Optional[str] = None,
        force: bool = False,
    ) -> bool:
        """Record progress; writes at most once per ``interval_s`` unless
        forced.  Returns whether a document was written."""
        if events is not None:
            self._events = int(events)
        if phase is not None:
            self._phase = str(phase)
        return self._write(force=force)

    def set_regions(self, done: int, total: int) -> None:
        """Update the regions-done gauge (forces a write on completion of
        the last region so short fanouts still leave a final count)."""
        self._regions_done = int(done)
        self._regions_total = int(total)
        self._write(force=done >= total > 0)

    def finish(self, state: str = "done") -> None:
        """Final beat: mark the run finished (always written)."""
        self._state = str(state)
        self._write(force=True)

    # -- derived ------------------------------------------------------------

    def _eta_s(self, now: float) -> Optional[float]:
        done, total = self._regions_done, self._regions_total
        if self._state != "running" or not 0 < done < total:
            return None
        elapsed = now - self._t0
        if elapsed <= 0:
            return None
        return elapsed * (total - done) / done

    def _write(self, force: bool = False) -> bool:
        now = time.monotonic()
        if not force and now - self._last_write < self.interval_s:
            return False
        span = now - self._last_write
        if span > 0 and self._last_write > 0:
            self._rate = (self._events - self._events_at_last) / span
        self._events_at_last = self._events
        self._last_write = now
        self._seq += 1
        doc: Dict[str, Any] = {
            "schema": HEARTBEAT_SCHEMA,
            "pid": os.getpid(),
            "seq": self._seq,
            "state": self._state,
            "phase": self._phase,
            "epoch": time.time(),
            "elapsed_s": round(now - self._t0, 3),
            "events": self._events,
            "events_per_sec": round(self._rate, 1),
            "regions_done": self._regions_done,
            "regions_total": self._regions_total,
        }
        eta = self._eta_s(now)
        if eta is not None:
            doc["eta_s"] = round(eta, 1)
        # Atomic publish: a same-directory temp file + rename, so `tail`
        # never reads a torn document (per-pid temp name keeps a parent
        # and a worker from clobbering each other's in-flight writes).
        tmp = f"{self.path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            # A heartbeat must never take the run down (read-only dir,
            # disk full): drop the beat, keep simulating.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True


# -- the installed heartbeat (same pattern as the tracer seam) -------------

_ACTIVE_HB: Optional[Heartbeat] = None


def active_heartbeat() -> Optional[Heartbeat]:
    """The installed heartbeat, or ``None`` (the hot-seam fast path)."""
    return _ACTIVE_HB


@contextmanager
def heartbeat_scope(heartbeat: Optional[Heartbeat]):
    """Install ``heartbeat`` for the duration of the block (nestable)."""
    if heartbeat is None:
        yield
        return
    global _ACTIVE_HB
    previous = _ACTIVE_HB
    _ACTIVE_HB = heartbeat
    try:
        yield
    finally:
        _ACTIVE_HB = previous


# -- reading ---------------------------------------------------------------


def read_heartbeat(path: str) -> Optional[Dict[str, Any]]:
    """The current document, or ``None`` when absent/torn (a torn read is
    impossible from our own writer but the file may predate it)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def tail_lines(
    doc: Dict[str, Any],
    now_epoch: Optional[float] = None,
    stall_after_s: float = DEFAULT_STALL_AFTER_S,
) -> list:
    """Human-readable rendering of one heartbeat document."""
    now = time.time() if now_epoch is None else now_epoch
    age = now - float(doc.get("epoch", now))
    state = str(doc.get("state", "?"))
    stalled = state == "running" and age > stall_after_s
    head = (
        f"pid {doc.get('pid', '?')} {state} phase={doc.get('phase', '?')} "
        f"beat #{doc.get('seq', '?')} ({age:.1f}s ago"
        + (", STALLED" if stalled else "")
        + ")"
    )
    lines = [head]
    events = int(doc.get("events", 0) or 0)
    if events:
        lines.append(
            f"{events} event(s) delivered, "
            f"{float(doc.get('events_per_sec', 0.0)):.1f} events/sec"
        )
    total = int(doc.get("regions_total", 0) or 0)
    if total:
        done = int(doc.get("regions_done", 0) or 0)
        eta = doc.get("eta_s")
        lines.append(
            f"regions {done}/{total}"
            + (f", eta {float(eta):.1f}s" if eta is not None else "")
        )
    lines.append(f"elapsed {float(doc.get('elapsed_s', 0.0)):.1f}s")
    return lines
