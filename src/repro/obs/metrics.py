"""Deterministic in-process metrics: counters, gauges, histograms.

The registry instruments the pipeline's hot seams — events flushed per
:class:`~repro.perf.ring.EventRing` batch, k-means iterations, cache
hits/misses/evictions, retry and backoff accounting — with the contract
that everything except wall-clock *values* is deterministic: two runs with
the same seed produce identical counter values and identical histogram
*bucket boundaries* (observation counts of timing histograms naturally
coincide too; only the summed seconds differ).

Histogram buckets are therefore fixed at import time as log-spaced bounds
(half-decade steps from 1µs to ~3162s) rather than adapting to the data:
adaptive buckets would make two traces incomparable and ``repro-obs
--diff`` meaningless.

Instrumented code never talks to a registry directly; it asks
:func:`repro.obs.tracer.active_metrics` for the installed one and skips
all work when tracing is off — a single ``is None`` check per seam, the
same discipline :mod:`repro.resilience.faults` uses for injection sites.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Tuple

#: Fixed log-spaced histogram bucket upper bounds (seconds-flavoured, but
#: unitless): half-decade steps covering 1e-6 .. ~3.16e3, one overflow
#: bucket above.  Fixed so that any two traces bucket identically.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    round(10.0 ** (exp / 2.0), 10) for exp in range(-12, 8)
)


def _bucket_label(bound: float) -> str:
    return f"le_{bound:.3g}"


#: Deterministic bucket labels, in bound order, plus the overflow bucket.
BUCKET_LABELS: Tuple[str, ...] = tuple(
    [_bucket_label(b) for b in BUCKET_BOUNDS] + ["le_inf"]
)


class Histogram:
    """Fixed-bucket histogram: counts per log-spaced bound, plus sum."""

    __slots__ = ("count", "total", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    def as_dict(self) -> Dict[str, Any]:
        # Zero buckets are elided: the labels are fixed, so absence is
        # unambiguous and the trace line stays small.
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                BUCKET_LABELS[i]: n
                for i, n in enumerate(self.buckets)
                if n
            },
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        self.count += int(data.get("count", 0))
        self.total += float(data.get("sum", 0.0))
        labels = {label: i for i, label in enumerate(BUCKET_LABELS)}
        for label, n in data.get("buckets", {}).items():
            if label in labels:
                self.buckets[labels[label]] += int(n)


class MetricsRegistry:
    """Counters, gauges and histograms, keyed by dotted metric name.

    Metric kinds are disjoint namespaces enforced by usage, not types:
    ``inc`` creates/updates a counter, ``gauge`` overwrites a gauge,
    ``observe`` feeds a histogram.  ``as_dict`` renders everything with
    sorted keys so a dumped registry is canonical and diffable.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- writers -----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- lifecycle ---------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- rendering / merging ----------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }

    def merge(self, data: Dict[str, Any]) -> None:
        """Fold a dumped registry (e.g. a worker's per-job delta) into this
        one: counters add, gauges last-write-wins, histograms add."""
        for name, value in data.get("counters", {}).items():
            self.inc(name, int(value))
        for name, value in data.get("gauges", {}).items():
            self.gauge(name, float(value))
        for name, hist_data in data.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_dict(hist_data)
