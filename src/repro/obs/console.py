"""One code path for the CLI's ``[tag] message`` status lines.

``run-looppoint`` historically sprinkled ``print(..., flush=True)`` calls;
this helper gives the ``[cache]``/``[health]``/``[obs]``/``[predicted]``
lines a single format and a single suppression point (``--quiet``), and
routes diagnostics to stderr where they belong.

Stream resolution happens at call time (not construction) so pytest's
capture and callers that rebind ``sys.stdout`` see every line.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO


class Console:
    """Status/diagnostic line writer for the CLI entry points.

    * :meth:`status` — progress and grep-able metric lines, stdout,
      suppressed by ``quiet``;
    * :meth:`error` — diagnostics, stderr, never suppressed;
    * :meth:`result` — final deliverables (tables), stdout, never
      suppressed.
    """

    def __init__(
        self,
        quiet: bool = False,
        out: Optional[TextIO] = None,
        err: Optional[TextIO] = None,
    ) -> None:
        self.quiet = quiet
        self._out = out
        self._err = err

    @property
    def out(self) -> TextIO:
        return self._out if self._out is not None else sys.stdout

    @property
    def err(self) -> TextIO:
        return self._err if self._err is not None else sys.stderr

    @staticmethod
    def format(tag: str, message: str) -> str:
        return f"[{tag}] {message}"

    def status(self, tag: str, message: str) -> None:
        if not self.quiet:
            print(self.format(tag, message), file=self.out, flush=True)

    def error(self, tag: str, message: str) -> None:
        print(self.format(tag, message), file=self.err, flush=True)

    def result(self, text: str = "") -> None:
        print(text, file=self.out, flush=True)
