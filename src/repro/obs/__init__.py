"""Observability for pipeline runs: span tracing, metrics, reporting.

Public surface:

* :class:`Tracer` / :class:`NullTracer` / :func:`obs_scope` — span tracing
  with the fault-scope installation pattern; :func:`active_tracer` and
  :func:`active_metrics` are the instrumentation seams.
* :class:`MetricsRegistry` — deterministic counters/gauges/histograms.
* :class:`Console` — the CLI's single status-line code path.
* :func:`read_trace` / :func:`render_report` — trace files back to humans
  (the ``repro-obs`` CLI wraps these).
* :func:`attribute_error` / :class:`ErrorAttribution` — per-cluster
  decomposition of the extrapolation error.
* :func:`prometheus_text` / :func:`otlp_json` — standard-format export
  (``repro-obs export`` wraps these).
* :class:`Heartbeat` / :func:`active_heartbeat` — live-progress gauges
  for long replays (``repro-obs tail`` reads them).
* :class:`HistoryStore` / :func:`check_regression` — the run-history
  regression store (``repro-obs history`` wraps it).
"""

from .attribution import (
    ClusterErrorAttribution,
    ErrorAttribution,
    attribute_error,
    emit_attribution,
    live_scores,
    offline_scores,
)
from .console import Console
from .export import otlp_json, prometheus_text
from .heartbeat import (
    HEARTBEAT_SCHEMA,
    Heartbeat,
    active_heartbeat,
    heartbeat_path_for,
    heartbeat_scope,
    read_heartbeat,
)
from .history import (
    HISTORY_SCHEMA,
    HistoryRecord,
    HistoryStore,
    Regression,
    check_regression,
    history_path_for,
)
from .metrics import BUCKET_BOUNDS, Histogram, MetricsRegistry
from .report import folded_stacks, render_diff, render_report
from .trace import (
    DEFAULT_LIMITS,
    SpanRecord,
    TraceData,
    TraceError,
    TraceLimits,
    read_trace,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    TRACE_SCHEMA,
    Tracer,
    active_metrics,
    active_tracer,
    obs_scope,
    worker_tracer,
)

__all__ = [
    "BUCKET_BOUNDS",
    "ClusterErrorAttribution",
    "Console",
    "DEFAULT_LIMITS",
    "ErrorAttribution",
    "HEARTBEAT_SCHEMA",
    "HISTORY_SCHEMA",
    "Heartbeat",
    "Histogram",
    "HistoryRecord",
    "HistoryStore",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Regression",
    "Span",
    "SpanContext",
    "SpanRecord",
    "TRACE_SCHEMA",
    "TraceData",
    "TraceError",
    "TraceLimits",
    "Tracer",
    "active_heartbeat",
    "active_metrics",
    "active_tracer",
    "attribute_error",
    "check_regression",
    "emit_attribution",
    "folded_stacks",
    "heartbeat_path_for",
    "heartbeat_scope",
    "history_path_for",
    "live_scores",
    "obs_scope",
    "offline_scores",
    "otlp_json",
    "prometheus_text",
    "read_heartbeat",
    "read_trace",
    "render_diff",
    "render_report",
    "worker_tracer",
]
