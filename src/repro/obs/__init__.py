"""Observability for pipeline runs: span tracing, metrics, reporting.

Public surface:

* :class:`Tracer` / :class:`NullTracer` / :func:`obs_scope` — span tracing
  with the fault-scope installation pattern; :func:`active_tracer` and
  :func:`active_metrics` are the instrumentation seams.
* :class:`MetricsRegistry` — deterministic counters/gauges/histograms.
* :class:`Console` — the CLI's single status-line code path.
* :func:`read_trace` / :func:`render_report` — trace files back to humans
  (the ``repro-obs`` CLI wraps these).
"""

from .console import Console
from .metrics import BUCKET_BOUNDS, Histogram, MetricsRegistry
from .report import folded_stacks, render_diff, render_report
from .trace import (
    DEFAULT_LIMITS,
    SpanRecord,
    TraceData,
    TraceError,
    TraceLimits,
    read_trace,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    TRACE_SCHEMA,
    Tracer,
    active_metrics,
    active_tracer,
    obs_scope,
    worker_tracer,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Console",
    "DEFAULT_LIMITS",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanContext",
    "SpanRecord",
    "TRACE_SCHEMA",
    "TraceData",
    "TraceError",
    "TraceLimits",
    "Tracer",
    "active_metrics",
    "active_tracer",
    "folded_stacks",
    "obs_scope",
    "read_trace",
    "render_diff",
    "render_report",
    "worker_tracer",
]
