"""Standard-format telemetry export: Prometheus text and OTLP-style JSON.

The trace file is this repo's native format; real monitoring stacks
speak Prometheus exposition (for metrics) and OTLP (for spans).  This
module converts a parsed :class:`~repro.obs.trace.TraceData` into both,
so ``repro-serve`` (ROADMAP item 2) and an off-the-shelf
Prometheus/collector pairing can consume our telemetry unchanged:

* :func:`prometheus_text` — text exposition format 0.0.4.  Counters and
  gauges map directly; histograms map to classic Prometheus histograms
  (*cumulative* ``_bucket{le=...}`` series from our fixed log-spaced
  bounds, plus exact ``_sum``/``_count``).  Metric names are sanitized
  (``live.final_error_estimate`` -> ``repro_live_final_error_estimate``)
  and emitted in sorted order, so two runs of one seed export
  byte-identical documents (timestamps are deliberately omitted).
* :func:`otlp_json` — the OTLP/JSON resource->scope->spans shape with
  ids padded/derived to OTLP's 16-byte trace / 8-byte span hex fields
  and times on the unix-nano timeline via the per-process clock anchors.
* :func:`serve` — a stdlib HTTP scrape endpoint (``/metrics``) that
  re-reads the trace per request, so a long replay's metrics-so-far are
  scrapeable mid-run.
"""

from __future__ import annotations

import hashlib
import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from .metrics import BUCKET_BOUNDS
from .trace import SpanRecord, TraceData, TraceLimits, read_trace

#: Prometheus metric-name sanitizer: anything outside the legal alphabet
#: collapses to ``_``.
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: All exported metric names carry this prefix (Prometheus convention:
#: one namespace per application).
PROMETHEUS_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return PROMETHEUS_PREFIX + sanitized


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def prometheus_text(trace: TraceData) -> str:
    """The whole registry (parent + workers) as one exposition document."""
    lines: List[str] = []
    counters = trace.counters()
    for name in sorted(counters):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(float(counters[name]))}")
    gauges = trace.gauges()
    for name in sorted(gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(gauges[name])}")
    histograms = trace.histograms()
    for name in sorted(histograms):
        hist = histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        # Our buckets are per-bin counts; Prometheus buckets are
        # cumulative ("everything <= le"), the +Inf bucket equals _count.
        cumulative = 0
        for bound, count in zip(BUCKET_BOUNDS, hist.buckets):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {_prom_value(hist.total)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + "\n"


# -- OTLP-style JSON span export -------------------------------------------


def _otlp_trace_id(trace_id: str) -> str:
    """OTLP wants 16 bytes (32 hex chars); ours are 12 — derive stably."""
    return hashlib.sha256(trace_id.encode("utf-8")).hexdigest()[:32]


def _otlp_span_id(trace_id: str, span_id: str) -> str:
    return hashlib.sha256(
        f"{trace_id}:{span_id}".encode("utf-8")
    ).hexdigest()[:16]


def _otlp_attr(key: str, value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        body: Dict[str, Any] = {"boolValue": value}
    elif isinstance(value, int):
        body = {"intValue": str(value)}
    elif isinstance(value, float):
        body = {"doubleValue": value}
    else:
        body = {"stringValue": json.dumps(value, sort_keys=True)
                if isinstance(value, (list, dict)) else str(value)}
    return {"key": key, "value": body}


def _span_times_nano(trace: TraceData, span: SpanRecord) -> "tuple[int, int]":
    start = trace.abs_time(span)
    if start is None:
        # No clock anchor: monotonic time is still a valid *relative*
        # timeline; export it as-is rather than dropping the span.
        start = span.t0
    return int(round(start * 1e9)), int(round((start + span.dur) * 1e9))


def otlp_json(trace: TraceData) -> Dict[str, Any]:
    """The span tree as an OTLP/JSON ``resourceSpans`` document."""
    otlp_tid = _otlp_trace_id(trace.trace_id)
    spans: List[Dict[str, Any]] = []
    for span in trace.spans:
        start_ns, end_ns = _span_times_nano(trace, span)
        record: Dict[str, Any] = {
            "traceId": otlp_tid,
            "spanId": _otlp_span_id(trace.trace_id, span.span_id),
            "name": span.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": [
                _otlp_attr("repro.pid", span.pid),
                _otlp_attr("repro.cpu_seconds", span.cpu),
            ] + [
                _otlp_attr(key, value)
                for key, value in sorted(span.attrs.items())
            ],
        }
        if span.parent is not None:
            record["parentSpanId"] = _otlp_span_id(
                trace.trace_id, span.parent
            )
        spans.append(record)
    resource_attrs = [
        _otlp_attr("service.name", "repro-looppoint"),
        _otlp_attr("repro.trace_id", trace.trace_id),
        _otlp_attr("repro.schema", trace.schema),
    ] + [
        _otlp_attr(f"repro.meta.{key}", value)
        for key, value in sorted(trace.meta.items())
    ]
    return {
        "resourceSpans": [{
            "resource": {"attributes": resource_attrs},
            "scopeSpans": [{
                "scope": {"name": "repro.obs", "version": trace.schema},
                "spans": spans,
            }],
        }],
    }


# -- scrape endpoint --------------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics``; the trace is re-read per scrape so a live
    run's metrics-so-far show up (the tracer flushes metrics records at
    finish and per worker job, segments accumulate in between)."""

    server_version = "repro-obs/1"
    trace_path = ""
    limits: Optional[TraceLimits] = None

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        try:
            body = prometheus_text(
                read_trace(self.trace_path, self.limits)
            ).encode("utf-8")
        except Exception as exc:  # degraded trace: say so, stay up
            self.send_error(503, f"trace unreadable: {exc}")
            return
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # scrape logging is noise on stderr


def make_server(
    trace_path: str,
    port: int,
    limits: Optional[TraceLimits] = None,
) -> ThreadingHTTPServer:
    """A bound-but-not-serving scrape server (``port=0`` picks a free
    one; read it back from ``server.server_address[1]``)."""
    handler = type(
        "_BoundMetricsHandler",
        (_MetricsHandler,),
        {"trace_path": str(trace_path), "limits": limits},
    )
    return ThreadingHTTPServer(("127.0.0.1", port), handler)


def serve(
    trace_path: str,
    port: int,
    limits: Optional[TraceLimits] = None,
    max_requests: Optional[int] = None,
) -> int:
    """Serve Prometheus scrapes of ``trace_path`` on ``port``.

    ``max_requests`` bounds the serving loop (one-shot CI probes);
    ``None`` serves until interrupted.  Returns the bound port.
    """
    with make_server(trace_path, port, limits) as server:
        bound = server.server_address[1]
        if max_requests is None:
            server.serve_forever()
        else:
            for _ in range(max_requests):
                server.handle_request()
        return bound
