"""Rendering a parsed trace: stage breakdown, critical path, folded
stacks, and run-vs-run diff.

The stage table aggregates the *top-level* spans (direct children of the
run root): the pipeline runs its stages sequentially, so their wall times
partition the run wall time, and the table's footer reports exactly that
coverage (the residue is un-spanned glue).  Nested stage spans (``record``
computing lazily inside ``profile``) show with their ancestry path, so no
time is double-counted at the top level.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .trace import SpanRecord, TraceData


def _ascii_table(headers, rows, title=""):
    # Imported lazily: the analysis package pulls in the whole pipeline,
    # which itself imports repro.obs for instrumentation — a top-level
    # import here would be circular.
    from ..analysis.tables import ascii_table

    return ascii_table(headers, rows, title=title)


def _span_paths(trace: TraceData) -> List[Tuple[str, SpanRecord]]:
    """Every span with its ``root;...;name`` ancestry path (cycle-safe)."""
    by_id = trace.by_id()
    out: List[Tuple[str, SpanRecord]] = []
    for span in trace.spans:
        names = [span.name]
        seen = {span.span_id}
        cursor = span
        while cursor.parent is not None:
            parent = by_id.get(cursor.parent)
            if parent is None or parent.span_id in seen:
                break
            names.append(parent.name)
            seen.add(parent.span_id)
            cursor = parent
        out.append((";".join(reversed(names)), span))
    return out


def _self_seconds(trace: TraceData) -> Dict[str, float]:
    """Span id -> wall time not covered by its children (clamped >= 0:
    parallel children can legitimately overlap their parent)."""
    children = trace.children()
    out: Dict[str, float] = {}
    for span in trace.spans:
        child_total = sum(c.dur for c in children.get(span.span_id, []))
        out[span.span_id] = max(0.0, span.dur - child_total)
    return out


def _run_root(trace: TraceData) -> Optional[SpanRecord]:
    roots = trace.roots()
    if not roots:
        return None
    # A well-formed trace has exactly one root ("run"); tolerate more by
    # taking the longest.
    return max(roots, key=lambda s: s.dur)


def stage_breakdown(
    trace: TraceData,
) -> Tuple[List[List[object]], float, float]:
    """(rows, stage_total_seconds, run_seconds) of the top-level table."""
    root = _run_root(trace)
    run_dur = root.dur if root is not None else 0.0
    children = trace.children()
    top = children.get(root.span_id, []) if root is not None else []
    agg: Dict[str, List[float]] = {}
    order: List[str] = []
    for span in sorted(top, key=lambda s: s.t0):
        if span.name not in agg:
            agg[span.name] = [0, 0.0, 0.0]
            order.append(span.name)
        entry = agg[span.name]
        entry[0] += 1
        entry[1] += span.dur
        entry[2] += span.cpu
    rows: List[List[object]] = []
    total = 0.0
    for name in order:
        count, wall, cpu = agg[name]
        total += wall
        pct = 100.0 * wall / run_dur if run_dur > 0 else 0.0
        rows.append([name, int(count), f"{wall:.4f}s", f"{cpu:.4f}s",
                     f"{pct:.1f}%"])
    return rows, total, run_dur


def region_breakdown(trace: TraceData) -> List[List[object]]:
    """Aggregate ``region:*`` spans across processes: the per-region cost
    picture for parallel runs (worker spans included)."""
    regions = [s for s in trace.spans if s.name.startswith("region:")]
    agg: Dict[str, List[float]] = {}
    for span in regions:
        entry = agg.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.dur
        entry[2] = max(entry[2], span.dur)
    rows = []
    for name in sorted(agg, key=lambda n: -agg[n][1]):
        count, wall, worst = agg[name]
        rows.append([name, int(count), f"{wall:.4f}s", f"{worst:.4f}s"])
    return rows


def _as_int(value: object, default: int = 0) -> int:
    """Attribute values come from JSON written by arbitrary (possibly
    damaged) producers; coerce defensively instead of crashing the
    report."""
    try:
        return int(float(value))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default


def critical_path_lines(trace: TraceData) -> List[str]:
    """One line per fan-out: busy vs elapsed, the critical region, and
    worker efficiency — the parallel-run summary the paper's speedup
    argument needs."""
    children = trace.children()
    lines = []
    for span in trace.spans:
        if span.name != "fanout":
            continue
        # Tiny or forced-serial runs can leave a fanout span with a
        # missing/zero workers attribute or zero elapsed time; every
        # denominator here must survive that.
        workers = _as_int(span.attrs.get("workers", 1), 1)
        regions = [
            c for c in children.get(span.span_id, [])
            if c.name.startswith("region:")
        ]
        busy = sum(c.dur for c in regions)
        crit = max(regions, key=lambda c: c.dur) if regions else None
        efficiency = (
            busy / (workers * span.dur)
            if workers > 0 and span.dur > 0 else 0.0
        )
        crit_text = (
            f"critical {crit.name} {crit.dur:.4f}s" if crit is not None
            else "no region spans"
        )
        lines.append(
            f"fanout[{span.span_id}]: {len(regions)} region span(s) on "
            f"{workers} worker(s), elapsed {span.dur:.4f}s, busy "
            f"{busy:.4f}s, {crit_text}, efficiency {efficiency:.0%}"
        )
    if not lines:
        lines.append("no fan-out spans (serial run, or simulate was cached)")
    return lines


def folded_stacks(trace: TraceData) -> str:
    """Flamegraph-style folded stacks: ``a;b;c <self-microseconds>``.

    Feed to any standard ``flamegraph.pl``-compatible renderer.  Values
    are self times so stack totals reconstruct parent walls.
    """
    self_s = _self_seconds(trace)
    totals: Dict[str, int] = {}
    for path, span in _span_paths(trace):
        micros = int(round(self_s[span.span_id] * 1e6))
        totals[path] = totals.get(path, 0) + micros
    return "\n".join(f"{path} {value}" for path, value in sorted(totals.items()))


def histogram_rows(trace: TraceData) -> List[List[object]]:
    """Per-histogram rows with the *true* mean (exact sum over exact
    count, both carried in the trace) instead of a bucket-midpoint
    estimate."""
    rows: List[List[object]] = []
    for name, hist in sorted(trace.histograms().items()):
        mean = hist.total / hist.count if hist.count > 0 else 0.0
        rows.append([
            name, hist.count, f"{hist.total:.6f}", f"{mean:.6f}",
        ])
    return rows


def attribution_rows(trace: TraceData) -> List[List[object]]:
    """Top error contributors, reconstructed from ``attribution.*``
    gauges (emitted by the extrapolation stage / the live pass)."""
    gauges = trace.gauges()
    by_cluster: Dict[str, Dict[str, float]] = {}
    prefix = "attribution.cluster."
    for name, value in gauges.items():
        if not name.startswith(prefix):
            continue
        tail = name[len(prefix):]
        cluster_id, _, metric = tail.partition(".")
        if not metric:
            continue
        by_cluster.setdefault(cluster_id, {})[metric] = value
    if not by_cluster:
        return []

    def sort_key(item):
        cid, metrics = item
        return (
            -abs(metrics.get("error_cycles", 0.0)),
            -metrics.get("share", 0.0),
            _as_int(cid),
        )

    rows: List[List[object]] = []
    for cluster_id, metrics in sorted(by_cluster.items(), key=sort_key)[:10]:
        error = metrics.get("error_cycles")
        rows.append([
            cluster_id,
            f"{metrics.get('share', 0.0) * 100.0:.1f}%",
            f"{error:+.0f}" if error is not None else "--",
        ])
    return rows


def error_series_line(trace: TraceData) -> Optional[str]:
    """The live error-estimate time series, read back from the
    ``live:topup`` span's ``estimates`` attribute (initial estimate,
    then one value per top-up — monotone non-increasing)."""
    for span in trace.spans:
        if span.name != "live:topup":
            continue
        series = span.attrs.get("estimates")
        if not isinstance(series, list) or not series:
            continue
        try:
            values = [float(v) for v in series]
        except (TypeError, ValueError):
            continue
        shown = values if len(values) <= 8 else (
            values[:4] + values[-4:]
        )
        text = " -> ".join(f"{v:.4f}" for v in shown[:4])
        if len(values) > 8:
            text += " -> ... -> " + " -> ".join(
                f"{v:.4f}" for v in shown[4:]
            )
        elif len(shown) > 4:
            text += " -> " + " -> ".join(f"{v:.4f}" for v in shown[4:])
        return (
            f"error-estimate series ({len(values)} point(s)): {text}"
        )
    return None


def live_coverage_lines(trace: TraceData) -> List[str]:
    """The ``--live`` run summary, reconstructed from ``live.*`` metrics.

    Empty for offline traces.  Counters carry the region/cluster tallies
    and the ``live.final_error_estimate`` gauge the estimator's value
    after the last top-up — together the coverage story of a streaming
    run: how much of the execution was simulated in detail versus
    extrapolated from an admitted representative.
    """
    counters = trace.counters()
    regions = counters.get("live.regions")
    if regions is None:
        return []
    simulated = counters.get("live.simulated", 0)
    skipped = counters.get("live.skipped", 0)
    clusters = counters.get("live.clusters", 0)
    topups = counters.get("live.topups", 0)
    extrapolated = counters.get("live.extrapolated_filtered", 0)
    lines = [
        f"{regions} region(s): {simulated} simulated in detail, "
        f"{skipped} fast-forwarded and extrapolated",
        f"{clusters} cluster(s) admitted, {topups} top-up sample(s)",
        f"{extrapolated} filtered instruction(s) covered by extrapolation",
    ]
    estimate = trace.gauges().get("live.final_error_estimate")
    if estimate is not None:
        lines.append(f"final error estimate {estimate:.4f}")
    return lines


def render_report(trace: TraceData) -> str:
    """The full ``repro-obs report`` text for one trace."""
    header = [
        f"trace {trace.trace_id} ({trace.path})",
        f"  segments={trace.segments} spans={len(trace.spans)} "
        f"processes={len(trace.clocks)} "
        f"metrics_records={len(trace.metrics)}"
        + (" TRUNCATED" if trace.truncated else "")
        + (f" corrupt_lines={trace.corrupt_lines}"
           if trace.corrupt_lines else ""),
    ]
    if trace.meta:
        meta = " ".join(f"{k}={v}" for k, v in sorted(trace.meta.items()))
        header.append(f"  {meta}")
    parts = ["\n".join(header)]
    rows, total, run_dur = stage_breakdown(trace)
    if rows:
        table = _ascii_table(
            ["stage", "count", "wall", "cpu", "of run"], rows,
            title="per-stage breakdown (top-level spans)",
        )
        coverage = 100.0 * total / run_dur if run_dur > 0 else 0.0
        parts.append(
            f"{table}\n  stages cover {total:.4f}s of the "
            f"{run_dur:.4f}s run ({coverage:.1f}%)"
        )
    else:
        parts.append("no completed top-level spans (crashed run?)")
    region_rows = region_breakdown(trace)
    if region_rows:
        parts.append(_ascii_table(
            ["region", "attempts", "wall", "worst"], region_rows,
            title="per-region cost (all processes)",
        ))
    parts.append("critical path\n  " + "\n  ".join(critical_path_lines(trace)))
    live_lines = live_coverage_lines(trace)
    series = error_series_line(trace)
    if series:
        live_lines.append(series)
    if live_lines:
        parts.append("live coverage\n  " + "\n  ".join(live_lines))
    contrib_rows = attribution_rows(trace)
    if contrib_rows:
        total = trace.gauges().get("attribution.total_error_cycles")
        table = _ascii_table(
            ["cluster", "share", "error cycles"], contrib_rows,
            title="top error contributors",
        )
        if total is not None:
            table += f"\n  total extrapolation error {total:+.0f} cycles"
        parts.append(table)
    counters = trace.counters()
    if counters:
        counter_rows = [[name, counters[name]] for name in sorted(counters)]
        parts.append(_ascii_table(["counter", "value"], counter_rows,
                                 title="counters (parent + workers)"))
    hist_rows = histogram_rows(trace)
    if hist_rows:
        parts.append(_ascii_table(
            ["histogram", "count", "sum", "mean"], hist_rows,
            title="histograms (exact sum/count, true means)",
        ))
    return "\n\n".join(parts)


def _stage_walls(trace: TraceData) -> Dict[str, float]:
    rows, _, _ = stage_breakdown(trace)
    return {str(row[0]): float(str(row[2]).rstrip("s")) for row in rows}


def render_diff(a: TraceData, b: TraceData) -> str:
    """Stage walls and counters of trace ``b`` relative to ``a``."""
    walls_a, walls_b = _stage_walls(a), _stage_walls(b)
    rows = []
    for name in sorted(set(walls_a) | set(walls_b)):
        wa = walls_a.get(name)
        wb = walls_b.get(name)
        delta = (wb or 0.0) - (wa or 0.0)
        if wa and wb:
            rel = f"{100.0 * (wb - wa) / wa:+.1f}%"
        else:
            rel = "only in A" if wb is None else (
                "only in B" if wa is None else "--"
            )
        rows.append([
            name,
            f"{wa:.4f}s" if wa is not None else "--",
            f"{wb:.4f}s" if wb is not None else "--",
            f"{delta:+.4f}s",
            rel,
        ])
    parts = [
        f"A: trace {a.trace_id} ({a.path})\nB: trace {b.trace_id} ({b.path})"
    ]
    if rows:
        parts.append(_ascii_table(
            ["stage", "A wall", "B wall", "delta", "rel"], rows,
            title="stage wall times, A vs B",
        ))
    counters_a, counters_b = a.counters(), b.counters()
    counter_rows = []
    for name in sorted(set(counters_a) | set(counters_b)):
        va = counters_a.get(name, 0)
        vb = counters_b.get(name, 0)
        if va != vb:
            counter_rows.append([name, va, vb, vb - va])
    if counter_rows:
        parts.append(_ascii_table(
            ["counter", "A", "B", "delta"], counter_rows,
            title="counters that differ",
        ))
    else:
        parts.append("counters identical (deterministic telemetry)")
    # Histograms compare on their exact aggregates: observation counts
    # are deterministic for a seeded run (only the summed seconds of
    # timing histograms legitimately differ), so a count delta is a
    # regression signal, not noise.
    hists_a, hists_b = a.histograms(), b.histograms()
    hist_rows = []
    for name in sorted(set(hists_a) | set(hists_b)):
        ha, hb = hists_a.get(name), hists_b.get(name)
        ca = ha.count if ha is not None else 0
        cb = hb.count if hb is not None else 0
        mean_a = ha.total / ha.count if ha is not None and ha.count else 0.0
        mean_b = hb.total / hb.count if hb is not None and hb.count else 0.0
        hist_rows.append([
            name, ca, cb, cb - ca,
            f"{mean_a:.6f}", f"{mean_b:.6f}",
        ])
    if hist_rows:
        parts.append(_ascii_table(
            ["histogram", "A count", "B count", "delta", "A mean",
             "B mean"],
            hist_rows, title="histogram exact aggregates, A vs B",
        ))
    # Live runs promise determinism too: same seed, same stream of
    # matched/novel decisions, so the extrapolated-region tallies must
    # agree between runs.  A divergence here is a replay bug, not noise.
    live_names = sorted(
        name for name in set(counters_a) | set(counters_b)
        if name.startswith("live.")
    )
    if live_names:
        diverged = [
            name for name in live_names
            if counters_a.get(name, 0) != counters_b.get(name, 0)
        ]
        parts.append(
            "live determinism BROKEN: extrapolated-region counts differ "
            f"({', '.join(diverged)})" if diverged else
            "live determinism OK: extrapolated-region counts identical"
        )
    return "\n\n".join(parts)
