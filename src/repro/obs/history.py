"""The run-history regression store: accuracy gets the gate speed has.

``BENCH_perf.json`` pins wall-clock floors; nothing pinned *accuracy*
across PRs — the paper's headline 2.3% error could drift and no gate
would notice.  This module is the fix: every pipeline run appends one
JSON line (accuracy, coverage, wall-clock, key counters) to a per-
workload history file under the shared artifact store's directory, and
``repro-obs history --check`` fails when the newest run regresses
against a rolling baseline of the preceding runs.

Write discipline follows the repo's two crash-safety protocols:

* **appends** are the run-manifest protocol — one ``O_APPEND`` ``write``
  of a whole ``\\n``-terminated line, flushed and fsynced, so a kill
  leaves at worst one torn trailing line the loader skips and counts;
* **retention compaction** (trimming to the newest ``max_records``) is
  the store's publish protocol — rewrite into a same-directory temp
  file, fsync, ``os.replace`` — so a crash mid-compaction leaves either
  the old file or the new one, never a hybrid.

The regression check is deliberately asymmetric: *accuracy* and
*coverage* gate (both are deterministic for a seeded configuration, so
identical reruns always pass), *wall-clock* only reports trend (it is
machine-noise; BENCH_perf.json owns that gate with calibrated floors).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: History record schema marker (field audited by lint rule OBS003).
HISTORY_SCHEMA = "repro-history/1"

#: Keep at most this many records per history file before compaction.
DEFAULT_MAX_RECORDS = 512

#: Rolling-baseline window: the newest record is judged against the mean
#: of up to this many preceding records.
DEFAULT_WINDOW = 5

#: A run regresses when its error exceeds baseline * rel AND
#: baseline + abs (percentage points) — both, so near-zero baselines do
#: not flag float dust and large baselines do not flag small wobble.
DEFAULT_ERROR_REL = 1.25
DEFAULT_ERROR_ABS_PP = 0.5

#: Coverage may drop at most this many percentage points vs baseline.
DEFAULT_COVERAGE_DROP_PP = 5.0


@dataclass
class HistoryRecord:
    """One run's scoreboard entry."""

    workload: str
    mode: str                     # "offline" | "live"
    ts: float                     # epoch seconds at append time
    run_id: str
    runtime_error_pct: Optional[float]
    coverage_pct: float
    wall_s: float
    predicted_cycles: int
    actual_cycles: Optional[int] = None
    num_looppoints: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    schema: str = HISTORY_SCHEMA

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": self.schema,
            "ts": round(self.ts, 6),
            "run_id": self.run_id,
            "workload": self.workload,
            "mode": self.mode,
            "runtime_error_pct": (
                round(self.runtime_error_pct, 6)
                if self.runtime_error_pct is not None else None
            ),
            "coverage_pct": round(self.coverage_pct, 6),
            "wall_s": round(self.wall_s, 6),
            "predicted_cycles": int(self.predicted_cycles),
            "num_looppoints": int(self.num_looppoints),
        }
        if self.actual_cycles is not None:
            out["actual_cycles"] = int(self.actual_cycles)
        if self.counters:
            out["counters"] = {
                k: int(self.counters[k]) for k in sorted(self.counters)
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HistoryRecord":
        return cls(
            workload=str(data.get("workload", "")),
            mode=str(data.get("mode", "offline")),
            ts=float(data.get("ts", 0.0)),
            run_id=str(data.get("run_id", "")),
            runtime_error_pct=(
                float(data["runtime_error_pct"])
                if data.get("runtime_error_pct") is not None else None
            ),
            coverage_pct=float(data.get("coverage_pct", 0.0)),
            wall_s=float(data.get("wall_s", 0.0)),
            predicted_cycles=int(data.get("predicted_cycles", 0)),
            actual_cycles=(
                int(data["actual_cycles"])
                if data.get("actual_cycles") is not None else None
            ),
            num_looppoints=int(data.get("num_looppoints", 0)),
            counters=dict(data.get("counters", {})),
            schema=str(data.get("schema", "")),
        )


def history_path_for(cache_dir: str, workload: str) -> str:
    """Per-workload history file under the shared store's directory."""
    safe = workload.replace("/", "_")
    return os.path.join(cache_dir, "history", f"{safe}.history.jsonl")


class HistoryStore:
    """Append-only JSON-lines store of one workload's run records."""

    def __init__(
        self, path: str, max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        self.path = str(path)
        self.max_records = int(max_records)

    # -- writing ------------------------------------------------------------

    def append(self, record: HistoryRecord) -> int:
        """Append one record (manifest protocol), then enforce retention.

        Returns the record count after retention, for status lines.
        """
        line = json.dumps(
            record.as_dict(), sort_keys=True, separators=(",", ":")
        )
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._compact()
        return len(self.load()[0])

    def _compact(self) -> None:
        """Trim to the newest ``max_records`` via the publish protocol."""
        if self.max_records <= 0:
            return
        records, _ = self.load()
        if len(records) <= self.max_records:
            return
        keep = records[-self.max_records:]
        tmp = f"{self.path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in keep:
                    fh.write(json.dumps(
                        record.as_dict(), sort_keys=True,
                        separators=(",", ":"),
                    ) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- reading ------------------------------------------------------------

    def load(self) -> Tuple[List[HistoryRecord], int]:
        """All records in file order, plus the torn/corrupt line count."""
        records: List[HistoryRecord] = []
        corrupt = 0
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            return [], 0
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if not isinstance(data, dict) or "workload" not in data:
                corrupt += 1
                continue
            records.append(HistoryRecord.from_dict(data))
        return records, corrupt


# -- regression checking ----------------------------------------------------


@dataclass(frozen=True)
class Regression:
    """One gate violation of the newest record vs the rolling baseline."""

    metric: str
    latest: float
    baseline: float
    detail: str


def check_regression(
    records: Sequence[HistoryRecord],
    window: int = DEFAULT_WINDOW,
    error_rel: float = DEFAULT_ERROR_REL,
    error_abs_pp: float = DEFAULT_ERROR_ABS_PP,
    coverage_drop_pp: float = DEFAULT_COVERAGE_DROP_PP,
) -> List[Regression]:
    """Judge the newest record against the mean of up to ``window``
    preceding records.  Fewer than two records means nothing to judge."""
    if len(records) < 2:
        return []
    latest = records[-1]
    baseline = records[-(window + 1):-1]
    out: List[Regression] = []
    errors = [
        r.runtime_error_pct for r in baseline
        if r.runtime_error_pct is not None
    ]
    if errors and latest.runtime_error_pct is not None:
        base_err = sum(errors) / len(errors)
        bound = max(base_err * error_rel, base_err + error_abs_pp)
        if latest.runtime_error_pct > bound:
            out.append(Regression(
                metric="runtime_error_pct",
                latest=latest.runtime_error_pct,
                baseline=base_err,
                detail=(
                    f"runtime error {latest.runtime_error_pct:.3f}% exceeds "
                    f"the rolling baseline {base_err:.3f}% "
                    f"(bound {bound:.3f}%, window {len(errors)})"
                ),
            ))
    coverages = [r.coverage_pct for r in baseline]
    if coverages:
        base_cov = sum(coverages) / len(coverages)
        if latest.coverage_pct < base_cov - coverage_drop_pp:
            out.append(Regression(
                metric="coverage_pct",
                latest=latest.coverage_pct,
                baseline=base_cov,
                detail=(
                    f"coverage {latest.coverage_pct:.1f}% fell more than "
                    f"{coverage_drop_pp:.1f}pp below the rolling baseline "
                    f"{base_cov:.1f}%"
                ),
            ))
    return out


def trend_rows(records: Sequence[HistoryRecord]) -> List[List[object]]:
    """Table rows (newest last) for ``repro-obs history``."""
    rows: List[List[object]] = []
    for record in records:
        err = (
            f"{record.runtime_error_pct:.3f}%"
            if record.runtime_error_pct is not None else "--"
        )
        rows.append([
            time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(record.ts)
            ),
            record.mode,
            err,
            f"{record.coverage_pct:.1f}%",
            f"{record.wall_s:.2f}s",
            record.num_looppoints,
            record.run_id[:12],
        ])
    return rows
