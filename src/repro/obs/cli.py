"""``repro-obs``: read a run's trace file and explain where time went.

Examples::

    repro-obs report /tmp/cache/demo-matrix-1.trace.jsonl
    repro-obs folded trace.jsonl -o stacks.folded
    repro-obs diff before.trace.jsonl after.trace.jsonl

``report`` renders the per-stage/per-region breakdown and the parallel
critical-path summary; ``folded`` exports flamegraph-style folded stacks;
``diff`` compares two runs' stage walls and deterministic counters for
regression triage.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .report import folded_stacks, render_diff, render_report
from .trace import DEFAULT_LIMITS, TraceError, TraceLimits, read_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--max-bytes", type=int, default=DEFAULT_LIMITS.max_bytes,
        help="parser byte budget per trace (bounded reads; default 64MiB)",
    )
    parser.add_argument(
        "--max-spans", type=int, default=DEFAULT_LIMITS.max_spans,
        help="parser span budget per trace (default 500000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="stage/region time breakdown")
    report.add_argument("trace", help="trace file (JSON lines)")

    folded = sub.add_parser(
        "folded", help="flamegraph-style folded-stacks export"
    )
    folded.add_argument("trace", help="trace file (JSON lines)")
    folded.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write folded stacks here (default: stdout)",
    )

    diff = sub.add_parser("diff", help="compare two runs' traces")
    diff.add_argument("trace_a", help="baseline trace file")
    diff.add_argument("trace_b", help="comparison trace file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    limits = TraceLimits(max_bytes=args.max_bytes, max_spans=args.max_spans)
    try:
        if args.command == "report":
            print(render_report(read_trace(args.trace, limits)))
        elif args.command == "folded":
            text = folded_stacks(read_trace(args.trace, limits))
            if args.output:
                with open(args.output, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                print(f"wrote {args.output}", file=sys.stderr)
            else:
                print(text)
        elif args.command == "diff":
            print(render_diff(
                read_trace(args.trace_a, limits),
                read_trace(args.trace_b, limits),
            ))
    except TraceError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro-obs report ... | head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
