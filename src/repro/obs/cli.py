"""``repro-obs``: read a run's telemetry and explain it.

Examples::

    repro-obs report /tmp/cache/demo-matrix-1.trace.jsonl
    repro-obs folded trace.jsonl -o stacks.folded
    repro-obs diff before.trace.jsonl after.trace.jsonl
    repro-obs export trace.jsonl --format prometheus
    repro-obs export trace.jsonl --format otlp-json -o spans.json
    repro-obs export trace.jsonl --serve 9464
    repro-obs history cache/history/demo-matrix-1.history.jsonl
    repro-obs history cache/history/demo-matrix-1.history.jsonl --check
    repro-obs tail cache/demo-matrix-1.trace.jsonl

``report`` renders the per-stage/per-region breakdown, the parallel
critical-path summary, the top error contributors, and exact histogram
aggregates; ``folded`` exports flamegraph-style folded stacks; ``diff``
compares two runs' stage walls, counters, and histogram aggregates for
regression triage; ``export`` emits Prometheus text exposition or
OTLP-style JSON (optionally serving a scrape endpoint); ``history``
renders the run-history trend table and gates on regressions
(``--check``); ``tail`` shows a running replay's heartbeat.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .report import folded_stacks, render_diff, render_report
from .trace import DEFAULT_LIMITS, TraceError, TraceLimits, read_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--max-bytes", type=int, default=DEFAULT_LIMITS.max_bytes,
        help="parser byte budget per trace (bounded reads; default 64MiB)",
    )
    parser.add_argument(
        "--max-spans", type=int, default=DEFAULT_LIMITS.max_spans,
        help="parser span budget per trace (default 500000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="stage/region time breakdown")
    report.add_argument("trace", help="trace file (JSON lines)")

    folded = sub.add_parser(
        "folded", help="flamegraph-style folded-stacks export"
    )
    folded.add_argument("trace", help="trace file (JSON lines)")
    folded.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write folded stacks here (default: stdout)",
    )

    diff = sub.add_parser("diff", help="compare two runs' traces")
    diff.add_argument("trace_a", help="baseline trace file")
    diff.add_argument("trace_b", help="comparison trace file")

    export = sub.add_parser(
        "export", help="standard-format telemetry export",
    )
    export.add_argument("trace", help="trace file (JSON lines)")
    export.add_argument(
        "--format", choices=["prometheus", "otlp-json"],
        default="prometheus", dest="fmt",
        help="prometheus text exposition (metrics) or OTLP-style JSON "
             "(spans); default: prometheus",
    )
    export.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the document here (default: stdout)",
    )
    export.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve a Prometheus /metrics scrape endpoint on this port "
             "instead of printing (re-reads the trace per scrape; "
             "0 picks a free port)",
    )
    export.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="with --serve: stop after N requests (default: forever)",
    )

    history = sub.add_parser(
        "history", help="run-history trends and regression gate",
    )
    history.add_argument(
        "history_file", help="history file (JSON lines, see repro-lint "
                             "--history for its audit)",
    )
    history.add_argument(
        "--check", action="store_true",
        help="exit 1 when the newest run regresses (accuracy/coverage) "
             "against the rolling baseline",
    )
    history.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="rolling-baseline size for --check (default: 5)",
    )
    history.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="trend rows to show (default: 20)",
    )

    tail = sub.add_parser(
        "tail", help="show a running replay's heartbeat",
    )
    tail.add_argument(
        "path", help="heartbeat file, or the trace file it sits next to",
    )
    tail.add_argument(
        "--stall-after", type=float, default=None, metavar="SEC",
        help="age (seconds) past which a running heartbeat counts as "
             "stalled (default: 30); stalls exit 3",
    )
    return parser


def _cmd_export(args: argparse.Namespace, limits: TraceLimits) -> int:
    from .export import otlp_json, prometheus_text, serve

    if args.serve is not None:
        if args.fmt != "prometheus":
            print("repro-obs: --serve only serves prometheus format",
                  file=sys.stderr)
            return 2
        # Validate the trace once up front so a typo'd path fails fast
        # instead of 503ing every scrape.
        read_trace(args.trace, limits)
        try:
            serve(args.trace, args.serve, limits,
                  max_requests=args.max_requests)
        except KeyboardInterrupt:
            pass
        return 0
    trace = read_trace(args.trace, limits)
    if args.fmt == "prometheus":
        text = prometheus_text(trace)
    else:
        text = json.dumps(otlp_json(trace), indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    from ..analysis.tables import ascii_table
    from .history import (
        DEFAULT_WINDOW, HistoryStore, check_regression, trend_rows,
    )

    store = HistoryStore(args.history_file)
    records, corrupt = store.load()
    if not records:
        print(f"repro-obs: no history records in {args.history_file}",
              file=sys.stderr)
        return 2
    rows = trend_rows(records[-max(1, args.last):])
    print(ascii_table(
        ["when", "mode", "runtime err", "coverage", "wall",
         "looppoints", "run"],
        rows,
        title=f"run history: {records[-1].workload} "
              f"({len(records)} record(s))",
    ))
    if corrupt:
        print(f"  {corrupt} torn/corrupt line(s) skipped")
    if not args.check:
        return 0
    regressions = check_regression(
        records, window=args.window or DEFAULT_WINDOW
    )
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression.detail}")
        return 1
    print(
        f"history check OK: newest run holds the rolling baseline "
        f"({min(len(records) - 1, args.window or DEFAULT_WINDOW)} "
        f"prior run(s))"
    )
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    from .heartbeat import (
        DEFAULT_STALL_AFTER_S, heartbeat_path_for, read_heartbeat,
        tail_lines,
    )

    path = args.path
    doc = read_heartbeat(path)
    if doc is None and not path.endswith(".heartbeat.json"):
        path = heartbeat_path_for(args.path)
        doc = read_heartbeat(path)
    if doc is None:
        print(f"repro-obs: no heartbeat at {args.path}", file=sys.stderr)
        return 2
    stall_after = (
        args.stall_after if args.stall_after is not None
        else DEFAULT_STALL_AFTER_S
    )
    lines = tail_lines(doc, stall_after_s=stall_after)
    print(f"heartbeat {path}")
    for line in lines:
        print(f"  {line}")
    return 3 if "STALLED" in lines[0] else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    limits = TraceLimits(max_bytes=args.max_bytes, max_spans=args.max_spans)
    try:
        if args.command == "report":
            print(render_report(read_trace(args.trace, limits)))
        elif args.command == "folded":
            text = folded_stacks(read_trace(args.trace, limits))
            if args.output:
                with open(args.output, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                print(f"wrote {args.output}", file=sys.stderr)
            else:
                print(text)
        elif args.command == "diff":
            print(render_diff(
                read_trace(args.trace_a, limits),
                read_trace(args.trace_b, limits),
            ))
        elif args.command == "export":
            return _cmd_export(args, limits)
        elif args.command == "history":
            return _cmd_history(args)
        elif args.command == "tail":
            return _cmd_tail(args)
    except TraceError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro-obs report ... | head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
