"""Span tracing for pipeline runs: nested monotonic-clock spans, one
JSON line per span, stitched across process-pool workers.

Design constraints, in order:

1. **Zero cost when off.**  Instrumented code calls
   :func:`active_tracer` / :func:`active_metrics`; with no tracer
   installed those return :data:`NULL_TRACER` / ``None`` and every span
   is a reused no-op object — the hot loops stay within the perf-smoke
   floors.  Installation follows the :func:`repro.resilience.fault_scope`
   pattern: a module-level slot plus a nestable context manager.
2. **Crash-honest.**  A span line is written when the span *ends*, to an
   append-only JSON-lines file (one ``write`` per line, flushed), so a
   killed run leaves a readable trace whose missing spans are exactly the
   work that never finished — ``repro-lint --trace`` turns that into
   OBS001 findings.
3. **Cross-process stitching.**  A :class:`SpanContext` (trace id, parent
   span id, trace path) is picklable; a pool worker resolves it with
   :func:`worker_tracer` and appends its spans to the same file under the
   same trace id, parented into the dispatching span.  Each process
   writes one ``process`` line pairing its wall clock with its monotonic
   clock so a reader can place spans from different processes on one
   absolute timeline.

Timestamps use ``time.perf_counter()`` (monotonic) for intervals and
``time.time()`` only for the per-process clock anchor; CPU time is
``time.process_time()`` deltas.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry

#: Trace file schema identifier, bumped when record layouts change.
TRACE_SCHEMA = "repro-trace/1"


@dataclass(frozen=True)
class SpanContext:
    """Picklable handle for parenting worker spans into a parent trace."""

    trace_id: str
    span_id: str
    path: str


class Span:
    """One in-flight span; records itself on ``end`` (or scope exit)."""

    __slots__ = ("name", "span_id", "parent_id", "attrs",
                 "_tracer", "_t0", "_cpu0", "_ended")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer
        self._ended = False
        self._cpu0 = time.process_time()
        self._t0 = time.perf_counter()

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the live span."""
        self.attrs[key] = value

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        dur = time.perf_counter() - self._t0
        cpu = time.process_time() - self._cpu0
        self._tracer._end_span(self, dur, cpu)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.end()
        return False


class _NullSpan:
    """Shared do-nothing span; every NullTracer span() returns this."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op.

    Instrumented code paths are written against this interface and never
    branch on "is tracing on"; the cost of an untraced span is one method
    call returning a shared singleton.
    """

    enabled = False
    metrics: Optional[MetricsRegistry] = None
    spans_written = 0

    def span(self, name: str, parent: Optional[str] = None,
             **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def set_current(self, key: str, value: Any) -> None:
        pass

    def current_context(self) -> Optional[SpanContext]:
        return None

    def emit_metrics(self, scope: str = "run", reset: bool = False) -> None:
        pass

    def finish(self) -> Optional[Dict[str, Any]]:
        return None


NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()


def _new_trace_id(hint: str) -> str:
    blob = f"{hint}:{os.getpid()}:{time.time_ns()}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:12]


class Tracer:
    """Writes one run's spans and metrics to an append-only trace file.

    A fresh :class:`Tracer` appends a ``trace-start`` record (a new trace
    *segment* — re-runs against the same path accumulate like the
    resilience manifest does, and readers use the last segment).  Worker
    processes construct continuation tracers via :func:`worker_tracer`,
    which append a ``process`` record instead.
    """

    enabled = True

    def __init__(
        self,
        path: str,
        trace_id: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        _continuation: bool = False,
        **meta: Any,
    ) -> None:
        self.path = str(path)
        self.pid = os.getpid()
        self.trace_id = trace_id or _new_trace_id(self.path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans_written = 0
        self._seq = 0
        self._stack: List[Span] = []
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Long-lived append handle, closed in close() at trace shutdown.
        self._fh = open(self.path, "a", encoding="utf-8")  # noqa: SIM115
        record = {
            "type": "process" if _continuation else "trace-start",
            "trace_id": self.trace_id,
            "pid": self.pid,
            "epoch": time.time(),
            "mono": time.perf_counter(),
        }
        if not _continuation:
            record["schema"] = TRACE_SCHEMA
            if meta:
                record["meta"] = meta
        self._emit(record)

    # -- record plumbing ---------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        # One write per line: small O_APPEND writes do not interleave, so
        # parent and workers can share the file without locking.
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    # -- spans -------------------------------------------------------------

    def span(self, name: str, parent: Optional[str] = None,
             **attrs: Any) -> Span:
        """Open a span; nested under the current span unless ``parent``
        names an explicit (possibly cross-process) parent span id."""
        self._seq += 1
        span_id = f"{self.pid:x}.{self._seq}"
        if parent is None and self._stack:
            parent = self._stack[-1].span_id
        span = Span(self, name, span_id, parent, dict(attrs))
        self._stack.append(span)
        return span

    def _end_span(self, span: Span, dur: float, cpu: float) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # out-of-order end; keep the rest sane
            self._stack.remove(span)
        record: Dict[str, Any] = {
            "type": "span",
            "id": span.span_id,
            "name": span.name,
            "pid": self.pid,
            "t0": round(span._t0, 9),
            "dur": round(dur, 9),
            "cpu": round(cpu, 9),
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        if span.attrs:
            record["attrs"] = span.attrs
        self._emit(record)
        self.spans_written += 1

    def set_current(self, key: str, value: Any) -> None:
        """Attribute the innermost open span, if any (no-op otherwise)."""
        if self._stack:
            self._stack[-1].set(key, value)

    def current_context(self) -> Optional[SpanContext]:
        """A picklable context parenting new work under the current span."""
        if not self._stack:
            return None
        return SpanContext(
            trace_id=self.trace_id,
            span_id=self._stack[-1].span_id,
            path=self.path,
        )

    # -- metrics / lifecycle ----------------------------------------------

    def emit_metrics(self, scope: str = "run", reset: bool = False) -> None:
        """Write the registry as a ``metrics`` record (skipped if empty)."""
        if self.metrics:
            self._emit({
                "type": "metrics",
                "trace_id": self.trace_id,
                "pid": self.pid,
                "scope": scope,
                "metrics": self.metrics.as_dict(),
            })
            if reset:
                self.metrics.reset()

    def finish(self) -> Dict[str, Any]:
        """Flush metrics, write the ``trace-end`` marker, close the file.

        Returns a summary (path, trace id, span count) for a CLI ``[obs]``
        line.  Spans still open are deliberately *not* force-closed: an
        unclosed span means the traced work did not finish, and the trace
        should say so (OBS001) rather than fake an end time.
        """
        self.emit_metrics(scope="run")
        self._emit({
            "type": "trace-end",
            "trace_id": self.trace_id,
            "pid": self.pid,
            "spans": self.spans_written,
            "open_spans": len(self._stack),
        })
        self._fh.close()
        return {
            "path": self.path,
            "trace_id": self.trace_id,
            "spans": self.spans_written,
        }


# -- the installed tracer ------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active_tracer():
    """The installed tracer, or :data:`NULL_TRACER` when tracing is off."""
    return _ACTIVE if _ACTIVE is not None else NULL_TRACER


def active_metrics() -> Optional[MetricsRegistry]:
    """The installed tracer's registry, or ``None`` (the hot-seam check)."""
    return _ACTIVE.metrics if _ACTIVE is not None else None


@contextmanager
def obs_scope(tracer):
    """Install ``tracer`` for the duration of the block (nestable).

    A ``None`` or disabled tracer installs nothing — the seams keep
    hitting the ``is None`` fast path — mirroring
    :func:`repro.resilience.fault_scope`.
    """
    if tracer is None or not tracer.enabled:
        yield
        return
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield
    finally:
        _ACTIVE = previous


#: Per-worker-process continuation tracers, keyed by (path, trace id):
#: a pool worker serves many jobs of one run and must emit its ``process``
#: clock-anchor record exactly once.
_WORKER_TRACERS: Dict[Any, Tracer] = {}


def worker_tracer(ctx: Optional[SpanContext]):
    """Resolve a :class:`SpanContext` into this process's tracer.

    Returns :data:`NULL_TRACER` for ``None`` (tracing off in the parent).
    """
    if ctx is None:
        return NULL_TRACER
    key = (ctx.path, ctx.trace_id)
    tracer = _WORKER_TRACERS.get(key)
    if tracer is None:
        tracer = Tracer(ctx.path, trace_id=ctx.trace_id, _continuation=True)
        _WORKER_TRACERS[key] = tracer
    return tracer
