"""Bounded reading of trace files written by :mod:`repro.obs.tracer`.

A trace file accumulates *segments* (one ``trace-start`` per run, like the
resilience manifest accumulates runs); readers work on the last segment.
Parsing is bounded — byte and span limits with explicit truncation
flagging — so ``repro-lint --trace`` and ``repro-obs`` stay O(limits) on a
pathological multi-gigabyte trace instead of OOMing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError


class TraceError(ReproError):
    """A trace file cannot be read at all (missing, empty, no segment)."""


@dataclass(frozen=True)
class TraceLimits:
    """Parser bounds; exceeding either stops reading and flags truncation."""

    max_bytes: int = 64 * 1024 * 1024
    max_spans: int = 500_000
    #: Longest single line considered parseable (a span record is a few
    #: hundred bytes; anything near this is damage, not data).
    max_line_bytes: int = 1 * 1024 * 1024


DEFAULT_LIMITS = TraceLimits()


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as read back from the file."""

    span_id: str
    name: str
    pid: int
    t0: float
    dur: float
    cpu: float
    parent: Optional[str]
    attrs: Dict[str, Any]

    @property
    def end(self) -> float:
        return self.t0 + self.dur


@dataclass
class TraceData:
    """The last trace segment of one file, parsed within bounds."""

    path: str
    trace_id: str = ""
    schema: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)
    root_pid: int = -1
    #: Per-process clock anchors: pid -> (epoch seconds, monotonic seconds)
    #: sampled at the same instant, for cross-process time alignment.
    clocks: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    end: Optional[Dict[str, Any]] = None
    #: Parsing stopped at a limit; the span set is a prefix, not the run.
    truncated: bool = False
    #: Unparseable lines skipped (torn writes from a killed process).
    corrupt_lines: int = 0
    segments: int = 0

    def by_id(self) -> Dict[str, SpanRecord]:
        return {span.span_id: span for span in self.spans}

    def children(self) -> Dict[str, List[SpanRecord]]:
        out: Dict[str, List[SpanRecord]] = {}
        for span in self.spans:
            if span.parent is not None:
                out.setdefault(span.parent, []).append(span)
        return out

    def roots(self) -> List[SpanRecord]:
        return [span for span in self.spans if span.parent is None]

    def abs_time(self, span: SpanRecord) -> Optional[float]:
        """Span start on the shared wall-clock timeline, if anchored."""
        anchor = self.clocks.get(span.pid)
        if anchor is None:
            return None
        epoch, mono = anchor
        return epoch + (span.t0 - mono)

    def counters(self) -> Dict[str, int]:
        """All metrics records' counters summed (parent run + worker jobs)."""
        out: Dict[str, int] = {}
        for record in self.metrics:
            for name, value in (
                record.get("metrics", {}).get("counters", {}).items()
            ):
                out[name] = out.get(name, 0) + int(value)
        return out

    def gauges(self) -> Dict[str, float]:
        """All metrics records' gauges, last write wins (file order)."""
        out: Dict[str, float] = {}
        for record in self.metrics:
            for name, value in (
                record.get("metrics", {}).get("gauges", {}).items()
            ):
                out[name] = float(value)
        return out

    def histograms(self) -> Dict[str, "Histogram"]:
        """All metrics records' histograms merged (parent run + worker
        jobs), so exact ``count``/``sum`` — and therefore true means —
        survive aggregation instead of bucket-midpoint estimates."""
        from .metrics import Histogram

        out: Dict[str, Histogram] = {}
        for record in self.metrics:
            for name, data in (
                record.get("metrics", {}).get("histograms", {}).items()
            ):
                hist = out.get(name)
                if hist is None:
                    hist = out[name] = Histogram()
                if isinstance(data, dict):
                    hist.merge_dict(data)
        return out


def _span_from(record: Dict[str, Any]) -> Optional[SpanRecord]:
    try:
        return SpanRecord(
            span_id=str(record["id"]),
            name=str(record["name"]),
            pid=int(record["pid"]),
            t0=float(record["t0"]),
            dur=float(record["dur"]),
            cpu=float(record.get("cpu", 0.0)),
            parent=(
                str(record["parent"]) if record.get("parent") is not None
                else None
            ),
            attrs=dict(record.get("attrs", {})),
        )
    except (KeyError, TypeError, ValueError):
        return None


def read_trace(
    path: str, limits: Optional[TraceLimits] = None
) -> TraceData:
    """Parse the last segment of ``path`` within ``limits``.

    Every ``trace-start`` restarts accumulation, so memory is bounded by
    the *last* segment even when earlier segments are huge.  Raises
    :class:`TraceError` only when no segment exists at all; damaged or
    truncated content degrades to flags on the returned data.
    """
    limits = limits or DEFAULT_LIMITS
    if not os.path.isfile(path):
        raise TraceError(f"trace file not found: {path}")
    data = TraceData(path=str(path))
    seen_start = False
    consumed = 0
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                consumed += len(line)
                if consumed > limits.max_bytes:
                    data.truncated = True
                    break
                line = line.strip()
                if not line:
                    continue
                if len(line) > limits.max_line_bytes:
                    data.corrupt_lines += 1
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    data.corrupt_lines += 1
                    continue
                if not isinstance(record, dict):
                    data.corrupt_lines += 1
                    continue
                kind = record.get("type")
                if kind == "trace-start":
                    # New segment: drop everything accumulated so far.
                    segments = data.segments + 1
                    corrupt = data.corrupt_lines
                    data = TraceData(path=str(path))
                    data.segments = segments
                    data.corrupt_lines = corrupt
                    data.trace_id = str(record.get("trace_id", ""))
                    data.schema = str(record.get("schema", ""))
                    data.meta = dict(record.get("meta", {}))
                    data.root_pid = int(record.get("pid", -1))
                    data.clocks[data.root_pid] = (
                        float(record.get("epoch", 0.0)),
                        float(record.get("mono", 0.0)),
                    )
                    seen_start = True
                elif kind == "process":
                    data.clocks[int(record.get("pid", -1))] = (
                        float(record.get("epoch", 0.0)),
                        float(record.get("mono", 0.0)),
                    )
                elif kind == "span":
                    span = _span_from(record)
                    if span is None:
                        data.corrupt_lines += 1
                        continue
                    data.spans.append(span)
                    if len(data.spans) >= limits.max_spans:
                        data.truncated = True
                        break
                elif kind == "metrics":
                    data.metrics.append(record)
                elif kind == "trace-end":
                    data.end = record
                # Unknown record types are skipped: forward compatibility.
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from exc
    if not seen_start:
        raise TraceError(
            f"{path} contains no trace-start record "
            f"(not a repro trace, or fully corrupt)"
        )
    return data
