"""Per-cluster extrapolation-error attribution (Ekman-style).

The pipeline's headline number is one scalar — predicted vs actual
runtime — which says nothing about *where* the error comes from.  This
module decomposes it: every cluster gets an **uncertainty score** built
from the spread its single representative may be hiding, and the total
signed error is allocated across clusters in proportion to those scores.

The score follows the two-phase stratified-sampling literature (Ekman,
"CPU Simulation Using Two-Phase Stratified Sampling"; the same shape as
the live estimator's priors in :mod:`repro.analysis.online`): a
cluster's expected contribution to prediction error grows with the
within-cluster variance of its members' instruction masses, with how far
the representative sits from the cluster mean, and with the
representative's cycles-per-instruction (which converts count spread
into cycle spread).

Offline runs score ``cpi * sqrt(var(member_counts) + (rep - mean)^2) *
len(members)``; live runs reuse the estimator's frozen priors
(``mass * dispersion * cpi``).  Either way the allocation is::

    attributed_j = total_error * score_j / sum(scores)

(falling back to mass-proportional shares when every score is zero, e.g.
singleton clusters), so the attributions **reconcile**: they sum to the
total error by construction, which the XAR002-style test pins down.

Pure math on duck-typed inputs — no imports from clustering or timing,
so ``repro.obs`` stays leaf-like.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ClusterErrorAttribution:
    """One cluster's slice of the total extrapolation error."""

    cluster_id: int
    #: Filtered-instruction mass the cluster extrapolates over.
    mass: float
    #: Unnormalized uncertainty score (cycles-flavoured spread proxy).
    score: float
    #: ``score / sum(scores)`` (mass-proportional when all scores are 0).
    share: float
    #: ``total_error * share``; ``None`` when no reference run exists.
    error_cycles: Optional[float]


@dataclass(frozen=True)
class ErrorAttribution:
    """The full decomposition of one run's extrapolation error."""

    #: Signed total: predicted minus actual cycles (``None`` without a
    #: full-run reference).
    total_error_cycles: Optional[float]
    predicted_cycles: float
    actual_cycles: Optional[float]
    clusters: List[ClusterErrorAttribution]

    def top(self, n: int = 10) -> List[ClusterErrorAttribution]:
        """The ``n`` largest contributors, by |error| then share."""
        return sorted(
            self.clusters,
            key=lambda c: (
                -abs(c.error_cycles if c.error_cycles is not None else 0.0),
                -c.share, c.cluster_id,
            ),
        )[:n]

    def reconciliation_residue(self) -> float:
        """|sum(per-cluster errors) - total| — zero modulo float rounding."""
        if self.total_error_cycles is None:
            return 0.0
        return abs(
            sum(c.error_cycles or 0.0 for c in self.clusters)
            - self.total_error_cycles
        )


def attribute_error(
    scored: Sequence[Tuple[int, float, float]],
    predicted_cycles: float,
    actual_cycles: Optional[float] = None,
) -> ErrorAttribution:
    """Allocate the total error over ``(cluster_id, mass, score)`` triples.

    Scores are clamped non-negative; non-finite scores count as zero.
    When every score is zero the shares fall back to mass proportions
    (and to uniform shares if the masses are zero too), so the
    attributions always sum to the total.
    """
    total: Optional[float] = None
    if actual_cycles is not None:
        total = float(predicted_cycles) - float(actual_cycles)
    scores = [
        s if math.isfinite(s) and s > 0.0 else 0.0
        for _, _, s in scored
    ]
    denom = sum(scores)
    if denom <= 0.0:
        masses = [max(0.0, m) for _, m, _ in scored]
        mass_denom = sum(masses)
        if mass_denom > 0.0:
            shares = [m / mass_denom for m in masses]
        else:
            n = max(1, len(scored))
            shares = [1.0 / n] * len(scored)
    else:
        shares = [s / denom for s in scores]
    clusters = [
        ClusterErrorAttribution(
            cluster_id=int(cid),
            mass=float(mass),
            score=float(score),
            share=float(share),
            error_cycles=(
                total * share if total is not None else None
            ),
        )
        for (cid, mass, _), score, share in zip(scored, scores, shares)
    ]
    return ErrorAttribution(
        total_error_cycles=total,
        predicted_cycles=float(predicted_cycles),
        actual_cycles=(
            float(actual_cycles) if actual_cycles is not None else None
        ),
        clusters=clusters,
    )


def offline_scores(
    clusters: Sequence[Any],
    rep_cycles: Dict[int, float],
    slice_filtered: Sequence[float],
) -> List[Tuple[int, float, float]]:
    """Score triples for an offline selection.

    ``clusters`` are :class:`~repro.clustering.simpoint.ClusterInfo`-shaped
    (``cluster_id``/``representative``/``members``/``instruction_mass``);
    ``rep_cycles`` maps a representative slice index to its simulated
    cycles; ``slice_filtered`` is the per-slice filtered instruction
    count.  The score converts within-cluster count spread plus the
    representative's offset from the cluster mean into cycles via the
    representative's CPI.
    """
    n_slices = len(slice_filtered)
    out: List[Tuple[int, float, float]] = []
    for cluster in clusters:
        rep = cluster.representative
        rep_count = (
            float(slice_filtered[rep]) if 0 <= rep < n_slices else 0.0
        )
        cycles = float(rep_cycles.get(rep, 0.0))
        cpi = cycles / rep_count if rep_count > 0 else 0.0
        counts = [
            float(slice_filtered[m])
            for m in cluster.members
            if 0 <= m < n_slices
        ]
        if counts:
            mean = sum(counts) / len(counts)
            var = sum((c - mean) ** 2 for c in counts) / len(counts)
            delta = rep_count - mean
        else:
            var = 0.0
            delta = 0.0
        score = cpi * math.sqrt(var + delta * delta) * max(1, len(counts))
        out.append(
            (int(cluster.cluster_id), float(cluster.instruction_mass), score)
        )
    return out


def live_scores(
    cluster_reports: Sequence[Any],
    sample_cycles: Dict[int, float],
    sample_filtered: Dict[int, float],
) -> List[Tuple[int, float, float]]:
    """Score triples for a live pass: the estimator's frozen priors.

    ``cluster_reports`` are
    :class:`~repro.analysis.online.LiveClusterReport`-shaped
    (``cluster_id``/``representative``/``mass``/``dispersion``/
    ``samples``); ``sample_cycles``/``sample_filtered`` map a simulated
    region index to its cycles and filtered count.  The prior is
    ``mass * dispersion * rep_cpi``, shrunk by ``1/sqrt(m)`` for a
    cluster that earned ``m`` detailed samples through top-ups — exactly
    the per-cluster terms the running estimate combines.
    """
    out: List[Tuple[int, float, float]] = []
    for cluster in cluster_reports:
        rep = cluster.representative
        filtered = float(sample_filtered.get(rep, 0.0))
        cycles = float(sample_cycles.get(rep, 0.0))
        cpi = cycles / filtered if filtered > 0 else 0.0
        m = max(1, len(getattr(cluster, "samples", ()) or ()))
        score = (
            float(cluster.mass) * float(cluster.dispersion) * cpi
            / math.sqrt(m)
        )
        out.append((int(cluster.cluster_id), float(cluster.mass), score))
    return out


def emit_attribution(
    attribution: ErrorAttribution, prefix: str = "attribution",
) -> None:
    """Publish an attribution as gauges + attributes on the current span.

    Zero-cost when tracing is off (the usual ``is None`` fast path).
    Gauges carry the machine-readable decomposition —
    ``attribution.cluster.<id>.share`` (always) and ``.error_cycles``
    (when a reference exists) — which is what ``repro-obs report`` and
    the Prometheus export read back.
    """
    from .tracer import active_metrics, active_tracer

    reg = active_metrics()
    if reg is not None:
        if attribution.total_error_cycles is not None:
            reg.gauge(
                f"{prefix}.total_error_cycles",
                attribution.total_error_cycles,
            )
        reg.gauge(f"{prefix}.clusters", float(len(attribution.clusters)))
        for cluster in attribution.clusters:
            base = f"{prefix}.cluster.{cluster.cluster_id}"
            reg.gauge(f"{base}.share", round(cluster.share, 9))
            if cluster.error_cycles is not None:
                reg.gauge(
                    f"{base}.error_cycles", round(cluster.error_cycles, 6)
                )
    tracer = active_tracer()
    if tracer.enabled:
        top = attribution.top(3)
        tracer.set_current(
            f"{prefix}_top",
            [[c.cluster_id, round(c.share, 6)] for c in top],
        )
        if attribution.total_error_cycles is not None:
            tracer.set_current(
                f"{prefix}_total_error_cycles",
                round(attribution.total_error_cycles, 6),
            )
