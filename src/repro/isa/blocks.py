"""Basic blocks: single-entry/single-exit instruction sequences.

A block's terminating control transfer is summarized by :class:`BranchSpec`.
Loop back-edges are the interesting case — their dynamic outcome stream
(taken ``trip-1`` times, then not-taken) is synthesized by the runtime layer
from loop trip counts, so the branch predictor model sees a faithful stream
without per-iteration bookkeeping here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from ..errors import ProgramStructureError
from .instructions import AddressGen, Instruction, InstrKind, mix64

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .image import Image, Routine


#: Branch terminator kinds.
BRANCH_NONE = "none"        # falls through (or block has no branch)
BRANCH_LOOP = "loop"        # conditional back-edge of a loop
BRANCH_COND = "cond"        # data-dependent conditional branch
BRANCH_CALL = "call"        # calls another routine
BRANCH_RET = "ret"          # returns to caller


@dataclass(frozen=True)
class BranchSpec:
    """Terminating control transfer of a basic block."""

    kind: str = BRANCH_NONE
    #: For ``cond`` branches: probability the branch is taken.
    taken_prob: float = 0.5
    #: For ``call`` branches: name of the callee routine.
    callee: Optional[str] = None

    def __post_init__(self) -> None:
        valid = (BRANCH_NONE, BRANCH_LOOP, BRANCH_COND, BRANCH_CALL, BRANCH_RET)
        if self.kind not in valid:
            raise ProgramStructureError(f"invalid branch kind {self.kind!r}")
        if not 0.0 <= self.taken_prob <= 1.0:
            raise ProgramStructureError(
                f"taken_prob must be in [0,1], got {self.taken_prob}"
            )


class BasicBlock:
    """A static basic block.

    Blocks are created through :class:`~repro.isa.builder.ProgramBuilder`,
    which assigns ids and PCs during layout.  After layout a block knows its
    image, routine, id, and start PC.
    """

    __slots__ = (
        "name", "instructions", "branch", "is_loop_header",
        "bid", "pc", "image", "routine",
        "n_instr", "n_fp", "n_branches", "n_atomics", "mem_ops", "cond_prob",
    )

    def __init__(
        self,
        name: str,
        instructions: List[Instruction],
        branch: BranchSpec = BranchSpec(),
        is_loop_header: bool = False,
    ) -> None:
        if not instructions:
            raise ProgramStructureError(f"block {name!r} has no instructions")
        self.name = name
        self.instructions = list(instructions)
        self.branch = branch
        self.is_loop_header = is_loop_header
        # Filled in by layout:
        self.bid: int = -1
        self.pc: int = 0
        self.image: Optional["Image"] = None
        self.routine: Optional["Routine"] = None
        self._summarize()

    def _summarize(self) -> None:
        self.n_instr = len(self.instructions)
        self.n_fp = sum(1 for i in self.instructions if i.kind is InstrKind.FP)
        self.n_branches = sum(
            1 for i in self.instructions if i.kind is InstrKind.BRANCH
        )
        self.n_atomics = sum(
            1 for i in self.instructions if i.kind is InstrKind.ATOMIC
        )
        #: ``(slot, AddressGen, is_write, dependent)`` per memory instruction.
        self.mem_ops: List[Tuple[int, AddressGen, bool, bool]] = []
        for slot, instr in enumerate(self.instructions):
            if instr.mem is not None:
                is_write = instr.kind in (InstrKind.STORE, InstrKind.ATOMIC)
                dependent = bool(getattr(instr.mem, "dependent", False))
                self.mem_ops.append((slot, instr.mem, is_write, dependent))
        self.cond_prob = (
            self.branch.taken_prob if self.branch.kind == BRANCH_COND else None
        )

    # -- dynamic helpers -------------------------------------------------

    def cond_outcome(self, tid: int, exec_index: int) -> bool:
        """Deterministic outcome of a data-dependent conditional branch.

        Pure function of ``(tid, exec_index, pc)`` so that every execution
        mode (functional, replay, timing) observes the same stream.
        """
        if self.cond_prob is None:
            raise ProgramStructureError(
                f"block {self.name!r} has no conditional branch"
            )
        h = mix64(self.pc * 1000003 + tid * 7919 + exec_index)
        return (h & 0xFFFF) < int(self.cond_prob * 0x10000)

    @property
    def is_library(self) -> bool:
        """True if this block lives in a (synchronization) library image."""
        if self.image is None:
            raise ProgramStructureError(f"block {self.name!r} not laid out yet")
        return self.image.is_library

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.image.name if self.image is not None else "?"
        return (
            f"BasicBlock({self.name!r}, bid={self.bid}, pc={self.pc:#x}, "
            f"image={where}, n={self.n_instr})"
        )
