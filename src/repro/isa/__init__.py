"""Static program model: instructions, basic blocks, images, routines.

This package is the reproduction's stand-in for a compiled x86 binary.  A
:class:`~repro.isa.image.Program` is a set of images (the main executable and
shared libraries such as the OpenMP runtime), each holding routines made of
basic blocks with assigned PCs.  The dynamic side (who executes what, when)
lives in :mod:`repro.runtime` and :mod:`repro.exec_engine`.
"""

from .instructions import (
    InstrKind,
    Instruction,
    AddressGen,
    StridedAccess,
    RandomAccess,
    PointerChaseAccess,
)
from .blocks import BasicBlock, BranchSpec
from .image import Image, Routine, Program
from .builder import ProgramBuilder

__all__ = [
    "InstrKind",
    "Instruction",
    "AddressGen",
    "StridedAccess",
    "RandomAccess",
    "PointerChaseAccess",
    "BasicBlock",
    "BranchSpec",
    "Image",
    "Routine",
    "Program",
    "ProgramBuilder",
]
