"""Instruction kinds and deterministic address generators.

Memory instructions carry an :class:`AddressGen` that maps
``(thread id, execution index)`` to a byte address.  Address streams are pure
functions of those two values, so they are identical across interleavings and
across functional/timing executions — the property that makes recorded
pinballs replayable and region simulations comparable to the full run.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from ..errors import ProgramStructureError

#: Fixed-point mixing constants (splitmix64) for hash-based streams.
_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xBF58476D1CE4E5B9
_MIX3 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def mix64(x: int) -> int:
    """Deterministic 64-bit mix (splitmix64 finalizer)."""
    x = (x + _MIX1) & _MASK
    x = ((x ^ (x >> 30)) * _MIX2) & _MASK
    x = ((x ^ (x >> 27)) * _MIX3) & _MASK
    return x ^ (x >> 31)


class InstrKind(Enum):
    """Coarse instruction classes; enough detail for an interval core model."""

    IALU = "ialu"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    ATOMIC = "atomic"
    NOP = "nop"


class AddressGen:
    """Base class for deterministic address stream generators."""

    def addresses(self, tid: int, start_index: int, count: int) -> np.ndarray:
        """Byte addresses for executions ``start_index..start_index+count``.

        ``start_index`` is how many times the owning basic block has already
        executed on thread ``tid``.
        """
        raise NotImplementedError

    def address_at(self, tid: int, index: int) -> int:
        """Scalar fast path: the address of execution ``index``."""
        return int(self.addresses(tid, index, 1)[0])

    def footprint(self) -> int:
        """Approximate working-set size in bytes (for documentation)."""
        raise NotImplementedError


@dataclass(frozen=True)
class StridedAccess(AddressGen):
    """Sequential/strided stream over a (possibly per-thread) window.

    ``address = base + tid*tid_offset + (index*stride) % window``

    ``tid_offset > 0`` partitions the data among threads (private chunks of a
    big array, as a statically scheduled ``omp for`` would); ``tid_offset == 0``
    makes the window shared between threads.
    """

    base: int
    stride: int
    window: int
    tid_offset: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0 or self.stride == 0:
            raise ProgramStructureError(
                f"strided access needs window>0, stride!=0 "
                f"(got window={self.window}, stride={self.stride})"
            )

    def addresses(self, tid: int, start_index: int, count: int) -> np.ndarray:
        idx = np.arange(start_index, start_index + count, dtype=np.int64)
        base = self.base + tid * self.tid_offset
        return base + (idx * self.stride) % self.window

    def address_at(self, tid: int, index: int) -> int:
        return self.base + tid * self.tid_offset + (index * self.stride) % self.window

    def footprint(self) -> int:
        return self.window


@dataclass(frozen=True)
class RandomAccess(AddressGen):
    """Hash-scattered stream over a window (cache-hostile access pattern)."""

    base: int
    window: int
    seed: int = 0
    granule: int = 64
    shared: bool = True

    def __post_init__(self) -> None:
        if self.window < self.granule:
            raise ProgramStructureError(
                f"random access window {self.window} smaller than granule"
            )

    def addresses(self, tid: int, start_index: int, count: int) -> np.ndarray:
        idx = np.arange(start_index, start_index + count, dtype=np.uint64)
        salt = np.uint64(mix64(self.seed * 1315423911 + (0 if self.shared else tid + 1)))
        h = (idx + salt) * np.uint64(_MIX1)
        h ^= h >> np.uint64(30)
        h *= np.uint64(_MIX2)
        h ^= h >> np.uint64(27)
        slots = self.window // self.granule
        off = (h % np.uint64(slots)).astype(np.int64) * self.granule
        return self.base + off

    def footprint(self) -> int:
        return self.window


@dataclass(frozen=True)
class PointerChaseAccess(AddressGen):
    """Dependent-chain style stream: random but with low MLP semantics.

    The address stream itself is hash-scattered like :class:`RandomAccess`;
    the ``dependent`` flag tells the core model that misses from this
    instruction cannot overlap (a linked-list walk).
    """

    base: int
    window: int
    seed: int = 0
    granule: int = 64
    dependent: bool = True

    def addresses(self, tid: int, start_index: int, count: int) -> np.ndarray:
        return RandomAccess(
            self.base, self.window, seed=self.seed ^ 0x5151,
            granule=self.granule, shared=False,
        ).addresses(tid, start_index, count)

    def footprint(self) -> int:
        return self.window


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``pc`` is assigned by the image layout pass.  Memory instructions carry an
    address generator; other kinds have ``mem is None``.
    """

    kind: InstrKind
    pc: int = 0
    mem: Optional[AddressGen] = None
    latency: int = 1

    def __post_init__(self) -> None:
        is_mem = self.kind in (InstrKind.LOAD, InstrKind.STORE, InstrKind.ATOMIC)
        if is_mem and self.mem is None:
            raise ProgramStructureError(f"{self.kind} instruction needs an AddressGen")
        if not is_mem and self.mem is not None:
            raise ProgramStructureError(f"{self.kind} instruction cannot carry an AddressGen")
