"""A small DSL for constructing static programs.

Workload models (:mod:`repro.workloads`) and the OpenMP runtime image
(:mod:`repro.runtime.omp`) build their code through this builder rather than
hand-assembling :class:`~repro.isa.image.Program` objects.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ProgramStructureError
from .blocks import BasicBlock, BranchSpec
from .image import (
    IMAGE_SPACING,
    LIBRARY_IMAGE_BASE,
    MAIN_IMAGE_BASE,
    Image,
    Program,
    Routine,
)
from .instructions import AddressGen, Instruction, InstrKind


class RoutineBuilder:
    """Accumulates blocks for one routine."""

    def __init__(self, program_builder: "ProgramBuilder", routine: Routine):
        self._pb = program_builder
        self._routine = routine

    @property
    def name(self) -> str:
        return self._routine.name

    def block(
        self,
        name: str,
        *,
        ialu: int = 0,
        fp: int = 0,
        loads: Sequence[AddressGen] = (),
        stores: Sequence[AddressGen] = (),
        atomics: Sequence[AddressGen] = (),
        branch: BranchSpec = BranchSpec(),
        loop_header: bool = False,
        extra_branches: int = 0,
    ) -> BasicBlock:
        """Create a block from an instruction mix and append it.

        The block's instructions are laid out as: ialu ops interleaved with
        loads/stores/fp, optional data-dependent branches, then the
        terminating control transfer implied by ``branch``.
        """
        instrs: List[Instruction] = []
        for gen in loads:
            instrs.append(Instruction(InstrKind.LOAD, mem=gen))
        for _ in range(fp):
            instrs.append(Instruction(InstrKind.FP, latency=3))
        for _ in range(ialu):
            instrs.append(Instruction(InstrKind.IALU))
        for gen in stores:
            instrs.append(Instruction(InstrKind.STORE, mem=gen))
        for gen in atomics:
            instrs.append(Instruction(InstrKind.ATOMIC, mem=gen, latency=8))
        for _ in range(extra_branches):
            instrs.append(Instruction(InstrKind.BRANCH))
        if branch.kind != "none":
            kind = {
                "call": InstrKind.CALL,
                "ret": InstrKind.RET,
            }.get(branch.kind, InstrKind.BRANCH)
            instrs.append(Instruction(kind))
        if not instrs:
            instrs.append(Instruction(InstrKind.NOP))
        blk = BasicBlock(
            f"{self._routine.name}.{name}",
            instrs,
            branch=branch,
            is_loop_header=loop_header,
        )
        self._routine.blocks.append(blk)
        return blk


class ProgramBuilder:
    """Builds a :class:`Program` with a main image and optional libraries."""

    def __init__(self, name: str) -> None:
        self._program = Program(name)
        self._main = Image(name, MAIN_IMAGE_BASE, is_library=False)
        self._program.add_image(self._main)
        self._num_libraries = 0
        self._finalized: Optional[Program] = None

    def library(self, name: str) -> "LibraryBuilder":
        """Add a shared-library image (e.g. the OpenMP runtime)."""
        base = LIBRARY_IMAGE_BASE + self._num_libraries * IMAGE_SPACING
        image = Image(name, base, is_library=True)
        self._program.add_image(image)
        self._num_libraries += 1
        return LibraryBuilder(self, image)

    def routine(self, name: str) -> RoutineBuilder:
        """Add a routine to the main image."""
        routine = Routine(name, self._main.name)
        self._main.add_routine(routine)
        return RoutineBuilder(self, routine)

    def finalize(self) -> Program:
        """Lay out all images and return the immutable program."""
        if self._finalized is not None:
            raise ProgramStructureError("builder already finalized")
        self._program.finalize()
        self._finalized = self._program
        return self._program


class LibraryBuilder:
    """Adds routines to a library image."""

    def __init__(self, program_builder: ProgramBuilder, image: Image) -> None:
        self._pb = program_builder
        self._image = image

    @property
    def name(self) -> str:
        return self._image.name

    def routine(self, name: str) -> RoutineBuilder:
        routine = Routine(name, self._image.name)
        self._image.add_routine(routine)
        return RoutineBuilder(self._pb, routine)
