"""Images, routines, and the whole static program.

An :class:`Image` mirrors a loaded binary image: the main executable or a
shared library.  LoopPoint's spin-filtering heuristic is *image-based* — any
code in a synchronization library (``libiomp5.so`` in the paper) is executed
but never counted, and loop entries in library images are never used as
region boundaries.  We preserve that structure exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import ProgramStructureError
from .blocks import BasicBlock

#: Load addresses, mimicking a Linux x86-64 layout.
MAIN_IMAGE_BASE = 0x0040_0000
LIBRARY_IMAGE_BASE = 0x7F00_0000_0000
IMAGE_SPACING = 0x0100_0000
INSTRUCTION_BYTES = 4


@dataclass
class Routine:
    """A named routine: an entry block plus the blocks it owns."""

    name: str
    image_name: str
    blocks: List[BasicBlock] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ProgramStructureError(f"routine {self.name!r} has no blocks")
        return self.blocks[0]


class Image:
    """One loaded binary image (main executable or shared library)."""

    def __init__(self, name: str, base: int, is_library: bool) -> None:
        self.name = name
        self.base = base
        self.is_library = is_library
        self.routines: Dict[str, Routine] = {}
        self._next_pc = base

    def add_routine(self, routine: Routine) -> None:
        if routine.name in self.routines:
            raise ProgramStructureError(
                f"duplicate routine {routine.name!r} in image {self.name!r}"
            )
        self.routines[routine.name] = routine

    def layout(self, next_bid: int, block_index: List[BasicBlock]) -> int:
        """Assign PCs and block ids to every block in this image."""
        for routine in self.routines.values():
            for block in routine.blocks:
                block.image = self
                block.routine = routine
                block.pc = self._next_pc
                self._next_pc += block.n_instr * INSTRUCTION_BYTES
                block.bid = next_bid
                block_index.append(block)
                next_bid += 1
        return next_bid

    def contains_pc(self, pc: int) -> bool:
        return self.base <= pc < self._next_pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "lib" if self.is_library else "main"
        return f"Image({self.name!r}, {kind}, base={self.base:#x})"


class Program:
    """The complete static program: main image plus libraries.

    After :meth:`finalize`, ``blocks[bid]`` resolves any block id and
    ``block_at(pc)`` any PC, and the program is immutable.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.images: Dict[str, Image] = {}
        self.blocks: List[BasicBlock] = []
        self._pc_index: Dict[int, BasicBlock] = {}
        self._finalized = False

    def add_image(self, image: Image) -> None:
        if self._finalized:
            raise ProgramStructureError("program already finalized")
        if image.name in self.images:
            raise ProgramStructureError(f"duplicate image {image.name!r}")
        self.images[image.name] = image

    @property
    def main_image(self) -> Image:
        for image in self.images.values():
            if not image.is_library:
                return image
        raise ProgramStructureError(f"program {self.name!r} has no main image")

    def finalize(self) -> None:
        """Lay out all images: assign PCs and dense block ids."""
        if self._finalized:
            raise ProgramStructureError("program already finalized")
        next_bid = 0
        for image in self.images.values():
            next_bid = image.layout(next_bid, self.blocks)
        for block in self.blocks:
            self._pc_index[block.pc] = block
        self._finalized = True

    # -- lookups ----------------------------------------------------------

    def block_at(self, pc: int) -> BasicBlock:
        try:
            return self._pc_index[pc]
        except KeyError:
            raise ProgramStructureError(f"no block at pc {pc:#x}") from None

    def routine(self, name: str, image: Optional[str] = None) -> Routine:
        candidates = (
            [self.images[image]] if image is not None else self.images.values()
        )
        for img in candidates:
            if name in img.routines:
                return img.routines[name]
        raise ProgramStructureError(f"no routine named {name!r}")

    def iter_blocks(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def loop_headers(self, main_only: bool = False) -> List[BasicBlock]:
        """All static loop-header blocks, optionally main-image only."""
        return [
            b for b in self.blocks
            if b.is_loop_header and not (main_only and b.is_library)
        ]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, images={list(self.images)}, "
            f"blocks={len(self.blocks)})"
        )
