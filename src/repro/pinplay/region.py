"""Cutting region checkpoints out of a whole-program pinball.

The paper generates region pinballs "with a large enough warmup region added
to the representative region" (Sec. V-A.1) so checkpoint-driven simulation
starts from warmed microarchitectural state.  We replay the whole-program
pinball once and, for every requested region, capture three cut points per
thread: warmup start (a filtered-instruction coordinate), detail start (the
region's start marker), and detail end (the end marker).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import RegionError
from ..isa.image import Program
from ..profiling.markers import Marker
from ..resilience import REGION_EXTRACT, maybe_inject
from .pinball import Pinball, RegionPinball
from .replayer import ConstrainedReplayer

# Cut stages.
_AWAIT_WARMUP = 0
_AWAIT_START = 1
_AWAIT_END = 2
_DONE = 3


@dataclass(frozen=True)
class RegionCut:
    """One region to extract.

    ``start``/``end`` of ``None`` mean program start/end.  ``warmup_filtered``
    is the global filtered-instruction coordinate at which the warmup prefix
    begins (clamped to the region start by construction).
    """

    region_id: int
    start: Optional[Marker]
    end: Optional[Marker]
    warmup_filtered: int = 0


class _CutState:
    __slots__ = (
        "cut", "stage", "warm_pos", "warm_counts", "warm_total",
        "warm_filtered", "detail_pos", "end_pos", "detail_total",
        "detail_filtered", "end_total", "end_filtered",
    )

    def __init__(self, cut: RegionCut) -> None:
        self.cut = cut
        self.stage = _AWAIT_WARMUP
        self.warm_pos: Optional[List[int]] = None
        self.warm_counts: Optional[List[List[int]]] = None
        self.warm_total = 0
        self.warm_filtered = 0
        self.detail_pos: Optional[List[int]] = None
        self.detail_total = 0
        self.detail_filtered = 0
        self.end_pos: Optional[List[int]] = None
        self.end_total = 0
        self.end_filtered = 0


def extract_region_pinballs(
    program: Program,
    pinball: Pinball,
    cuts: Sequence[RegionCut],
) -> List[RegionPinball]:
    """Extract one :class:`RegionPinball` per :class:`RegionCut`.

    A single constrained replay of ``pinball`` locates every cut point, so
    extraction cost is one replay regardless of the number of regions.
    """
    maybe_inject(REGION_EXTRACT, f"extract:{program.name}:{len(cuts)}")
    states = [_CutState(cut) for cut in cuts]
    marker_pcs = set()
    for cut in cuts:
        for marker in (cut.start, cut.end):
            if marker is not None:
                marker_pcs.add(marker.pc)
    bid_to_pc = {program.block_at(pc).bid: pc for pc in marker_pcs}
    marker_counts: Dict[int, int] = {pc: 0 for pc in marker_pcs}

    replayer = ConstrainedReplayer(program, pinball)

    def hook(tid: int, pos: int, entry) -> None:
        filtered = replayer.filtered_instructions
        total = replayer.total_instructions
        positions = replayer.positions
        for state in states:
            if (
                state.stage == _AWAIT_WARMUP
                and filtered >= state.cut.warmup_filtered
            ):
                state.warm_pos = list(positions)
                state.warm_counts = copy.deepcopy(replayer.exec_counts)
                state.warm_total = total
                state.warm_filtered = filtered
                state.stage = _AWAIT_START
                if state.cut.start is None:
                    state.detail_pos = list(positions)
                    state.detail_total = total
                    state.detail_filtered = filtered
                    state.stage = _AWAIT_END

        if entry[0] != "b":
            return
        pc = bid_to_pc.get(entry[1])
        if pc is None:
            return
        before = marker_counts[pc]
        repeat = entry[2]
        marker_counts[pc] = before + repeat
        for state in states:
            if state.stage == _AWAIT_START:
                m = state.cut.start
                if m is not None and m.pc == pc and before <= m.count < before + repeat:
                    if m.count != before:
                        raise RegionError(
                            f"start marker {m} falls inside a batched entry"
                        )
                    state.detail_pos = list(positions)
                    state.detail_total = total
                    state.detail_filtered = filtered
                    state.stage = _AWAIT_END
            if state.stage == _AWAIT_END:
                m = state.cut.end
                if m is not None and m.pc == pc and before <= m.count < before + repeat:
                    if m.count != before:
                        raise RegionError(
                            f"end marker {m} falls inside a batched entry"
                        )
                    state.end_pos = list(positions)
                    state.end_total = total
                    state.end_filtered = filtered
                    state.stage = _DONE

    replayer.entry_hook = hook
    replayer.run()

    # Finalize open-ended cuts at program end.
    log_ends = [len(log) for log in pinball.logs]
    for state in states:
        if state.stage == _AWAIT_WARMUP:
            raise RegionError(
                f"region {state.cut.region_id}: warmup coordinate "
                f"{state.cut.warmup_filtered} beyond end of execution"
            )
        if state.stage == _AWAIT_START:
            raise RegionError(
                f"region {state.cut.region_id}: start marker "
                f"{state.cut.start} never reached"
            )
        if state.stage == _AWAIT_END:
            if state.cut.end is not None:
                raise RegionError(
                    f"region {state.cut.region_id}: end marker "
                    f"{state.cut.end} never reached"
                )
            state.end_pos = log_ends
            state.end_total = replayer.total_instructions
            state.end_filtered = replayer.filtered_instructions

    return [_build_region_pinball(pinball, state) for state in states]


def _build_region_pinball(pinball: Pinball, state: _CutState) -> RegionPinball:
    assert state.warm_pos is not None and state.detail_pos is not None
    assert state.end_pos is not None and state.warm_counts is not None
    logs = [
        list(pinball.logs[tid][state.warm_pos[tid]:state.end_pos[tid]])
        for tid in range(pinball.nthreads)
    ]
    _renumber_gseq(logs)
    return RegionPinball(
        program_name=pinball.program_name,
        nthreads=pinball.nthreads,
        wait_policy=pinball.wait_policy,
        seed=pinball.seed,
        logs=logs,
        total_instructions=state.end_total - state.warm_total,
        filtered_instructions=state.end_filtered - state.warm_filtered,
        metadata={
            "warmup_total": state.detail_total - state.warm_total,
            "warmup_filtered": state.detail_filtered - state.warm_filtered,
            "detail_total": state.end_total - state.detail_total,
            "detail_filtered": state.end_filtered - state.detail_filtered,
            "start": None if state.cut.start is None else
                     (state.cut.start.pc, state.cut.start.count),
            "end": None if state.cut.end is None else
                   (state.cut.end.pc, state.cut.end.count),
        },
        start_exec_counts=state.warm_counts,
        detail_positions=[
            state.detail_pos[tid] - state.warm_pos[tid]
            for tid in range(pinball.nthreads)
        ],
        region_id=state.cut.region_id,
    )


def _renumber_gseq(logs: List[List[tuple]]) -> None:
    """Densely renumber sync sequence numbers, preserving relative order."""
    entries = []
    for tid, log in enumerate(logs):
        for idx, entry in enumerate(log):
            if entry[0] == "s":
                entries.append((entry[4], tid, idx))
    entries.sort()
    for new_gseq, (_, tid, idx) in enumerate(entries):
        kind, obj_id, response = logs[tid][idx][1:4]
        logs[tid][idx] = ("s", kind, obj_id, response, new_gseq)
