"""Record-and-replay substrate (PinPlay's role in the paper).

A :class:`~repro.pinplay.pinball.Pinball` captures one whole-program
execution: per-thread logs of every executed basic block (application *and*
library code, spin loops included) plus a global total order over
synchronization actions.  Replaying a pinball reproduces the execution
deterministically — the paper's "constrained" mode used for analysis — and
the recorded sync order is what the constrained timing simulation must
honour, producing the artificial stalls discussed in Sec. V-A.1.
"""

from .pinball import Pinball, RegionPinball
from .recorder import Recorder, record_execution
from .replayer import ConstrainedReplayer
from .region import RegionCut, extract_region_pinballs
from .elfie import ELFie, pinball_to_elfie

__all__ = [
    "Pinball",
    "RegionPinball",
    "Recorder",
    "record_execution",
    "ConstrainedReplayer",
    "RegionCut",
    "extract_region_pinballs",
    "ELFie",
    "pinball_to_elfie",
]
