"""Recording executions into pinballs."""

from __future__ import annotations

from typing import Optional, Tuple

from ..exec_engine.engine import EngineResult, ExecutionEngine
from ..exec_engine.flowcontrol import FlowControl
from ..exec_engine.observers import Observer
from ..isa.image import Program
from ..policy import WaitPolicy
from ..runtime.omp import OmpRuntime
from ..runtime.thread import ThreadProgram
from .pinball import Pinball, append_block


class Recorder(Observer):
    """Observer that captures per-thread logs suitable for a pinball."""

    def __init__(self, nthreads: int) -> None:
        self.logs = [[] for _ in range(nthreads)]

    def on_block(self, tid, block, repeat, start_index) -> None:
        # Only library blocks (spin runs, sync paths) are merged: worker
        # entries keep their emitted batch granularity so replay interleaves
        # exactly as finely as the original run did.
        append_block(self.logs[tid], block.bid, repeat,
                     mergeable=block.image.is_library)

    def on_sync(self, tid, kind, obj_id, response, gseq) -> None:
        self.logs[tid].append(("s", kind, obj_id, response, gseq))


def record_execution(
    program: Program,
    thread_program: ThreadProgram,
    omp: OmpRuntime,
    nthreads: int,
    *,
    wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
    seed: int = 0,
    flow_control: Optional[FlowControl] = FlowControl(),
    extra_observers: Tuple[Observer, ...] = (),
) -> Tuple[Pinball, EngineResult]:
    """Run the program once under the functional engine and record it.

    Flow control is on by default, as in the paper's profiling runs: the
    recorded execution is balanced so the profile is stable against host
    scheduling noise.
    """
    recorder = Recorder(nthreads)
    engine = ExecutionEngine(
        program,
        thread_program,
        omp,
        nthreads,
        wait_policy=wait_policy,
        seed=seed,
        observers=(recorder, *extra_observers),
        flow_control=flow_control,
    )
    result = engine.run()
    pinball = Pinball(
        program_name=program.name,
        nthreads=nthreads,
        wait_policy=wait_policy.value,
        seed=seed,
        logs=recorder.logs,
        total_instructions=result.total_instructions,
        filtered_instructions=result.filtered_instructions,
        metadata={"num_events": result.num_events},
    )
    return pinball, result
