"""ELFies: executable region checkpoints (Patil et al., CGO 2021).

The paper (Sec. II, "How to simulate") names two routes to *unconstrained*
region simulation: binary-driven ``(PC, count)`` regions, and converting a
region pinball into an executable checkpoint — an *ELFie* — that runs like
a regular program, freeing the threads from the recorded shared-memory
order.  The paper's evaluation uses the former; this module implements the
latter as the natural extension.

Our ELFie materializes a region pinball back into *live thread programs*:
each thread's remaining work (worker-loop iterations, synchronization
events) is reconstructed from its log, and the synchronization objects are
re-armed so the timing simulator resolves barriers/locks/chunking itself —
unconstrained — starting from the checkpointed execution-counter state for
exact address-stream resumption.  Spin/futex library entries recorded in
the log are *dropped* (an ELFie re-executes synchronization natively rather
than replaying the recorded waiting), which is precisely what removes the
constrained-replay distortions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..errors import ReplayError
from ..exec_engine.events import (
    BarrierWait,
    BlockExec,
    SYNC_BARRIER,
    SYNC_CHUNK,
    SYNC_LOCK_ACQ,
    SYNC_LOCK_REL,
    SYNC_SINGLE,
)
from ..isa.image import Program
from ..runtime.omp import OmpRuntime
from .pinball import RegionPinball


@dataclass
class ELFie:
    """An executable region checkpoint.

    ``thread_codes`` hold, per thread, the reconstructed instruction-level
    work as ``("b", bid, repeat)`` / ``("sync", kind, obj_id)`` entries;
    ``start_exec_counts`` is the architectural-state snapshot (execution
    counters determine all address streams and branch outcomes);
    ``detail_positions`` marks where warmup ends per thread.
    """

    program_name: str
    nthreads: int
    region_id: int
    thread_codes: List[List[tuple]]
    start_exec_counts: List[List[int]]
    detail_positions: List[int]

    @property
    def num_entries(self) -> int:
        return sum(len(code) for code in self.thread_codes)

    def thread_main(self, program: Program, tid: int) -> Iterator[object]:
        """The generator one thread runs when the ELFie executes.

        Yields the standard event protocol, so the ELFie runs under the
        same drivers as a regular application binary.
        """
        from ..exec_engine.events import (
            LockAcquire,
            LockRelease,
            SingleRequest,
        )

        for entry in self.thread_codes[tid]:
            if entry[0] == "b":
                yield BlockExec(program.blocks[entry[1]], entry[2])
            else:
                _tag, kind, obj_id = entry
                if kind == SYNC_BARRIER:
                    yield BarrierWait(obj_id)
                elif kind == SYNC_LOCK_ACQ:
                    yield LockAcquire(obj_id)
                elif kind == SYNC_LOCK_REL:
                    yield LockRelease(obj_id)
                elif kind == SYNC_SINGLE:
                    # Re-arbitrated at run time; the response is ignored
                    # because the executed work is already in the code.
                    yield SingleRequest(obj_id)
                elif kind == SYNC_CHUNK:
                    # Chunks were resolved at record time; an ELFie replays
                    # the thread's own assignment (the work is inlined), so
                    # nothing is re-requested.
                    continue


def pinball_to_elfie(
    program: Program,
    omp: OmpRuntime,
    pinball: RegionPinball,
) -> ELFie:
    """Convert a region pinball into an executable checkpoint.

    Library-image block entries (spin iterations, futex paths, barrier
    bookkeeping) are stripped: the ELFie re-executes synchronization
    natively.  Sync *actions* that shape control flow are kept: barrier
    arrivals become live barriers (re-keyed per ordinal so partial barriers
    at the region edges stay consistent), lock acquire/release pairs become
    live lock operations.
    """
    if not isinstance(pinball, RegionPinball):
        raise ReplayError("ELFie conversion expects a RegionPinball")
    lib_bids = {
        block.bid for block in program.blocks if block.image.is_library
    }
    thread_codes: List[List[tuple]] = []
    for tid in range(pinball.nthreads):
        code: List[tuple] = []
        held_locks: Dict[int, bool] = {}
        for entry in pinball.logs[tid]:
            if entry[0] == "b":
                if entry[1] in lib_bids:
                    continue
                if code and code[-1][0] == "b" and code[-1][1] == entry[1]:
                    code[-1] = ("b", entry[1], code[-1][2] + entry[2])
                else:
                    code.append(("b", entry[1], entry[2]))
            else:
                _s, kind, obj_id, _response, _gseq = entry
                if kind == SYNC_BARRIER:
                    code.append(("sync", SYNC_BARRIER, obj_id))
                elif kind == SYNC_LOCK_ACQ:
                    held_locks[obj_id] = True
                    code.append(("sync", SYNC_LOCK_ACQ, obj_id))
                elif kind == SYNC_LOCK_REL:
                    if held_locks.pop(obj_id, False):
                        code.append(("sync", SYNC_LOCK_REL, obj_id))
                    else:
                        # Release without a recorded acquire (cut mid-
                        # critical-section): drop it, the lock was never
                        # taken in the ELFie.
                        continue
                # barrier releases, chunk grants, single grants are
                # record-time artifacts; they are re-resolved live.
        # A lock still held at the region edge must be released or the
        # ELFie deadlocks on itself at the next acquire.
        for obj_id, held in held_locks.items():
            if held:
                code.append(("sync", SYNC_LOCK_REL, obj_id))
        thread_codes.append(code)

    # Re-key barrier ordinals per thread so every thread agrees on barrier
    # instance identity even when the cut clipped some arrivals.
    _rekey_barriers(thread_codes)

    detail_positions = []
    for tid in range(pinball.nthreads):
        # Map the pinball's detail position (log index) onto the stripped
        # code: count surviving entries before it.
        cut = pinball.detail_positions[tid] if pinball.detail_positions else 0
        survived = 0
        seen = 0
        for entry in pinball.logs[tid]:
            if seen >= cut:
                break
            seen += 1
            if entry[0] == "b":
                if entry[1] not in lib_bids:
                    survived += 1
            elif entry[1] in (SYNC_BARRIER, SYNC_LOCK_ACQ, SYNC_LOCK_REL):
                survived += 1
        detail_positions.append(min(survived, len(thread_codes[tid])))

    return ELFie(
        program_name=pinball.program_name,
        nthreads=pinball.nthreads,
        region_id=pinball.region_id,
        thread_codes=thread_codes,
        start_exec_counts=[list(r) for r in pinball.start_exec_counts],
        detail_positions=detail_positions,
    )


def _rekey_barriers(thread_codes: List[List[tuple]]) -> None:
    """Renumber barrier ids by per-thread arrival ordinal.

    Within a region, every thread passes the same barrier sequence; the
    n-th barrier arrival of each thread is the same dynamic barrier, so the
    ordinal is a valid shared key (and robust to clipped ids).  A thread
    with fewer arrivals than the others simply stops before the extra
    barriers, which then can never release — so all threads are truncated
    to the minimum arrival count.
    """
    counts = []
    for code in thread_codes:
        counts.append(
            sum(1 for e in code if e[0] == "sync" and e[1] == SYNC_BARRIER)
        )
    if not counts:
        return
    limit = min(counts)
    for tid, code in enumerate(thread_codes):
        rekeyed: List[tuple] = []
        ordinal = 0
        for entry in code:
            if entry[0] == "sync" and entry[1] == SYNC_BARRIER:
                if ordinal >= limit:
                    break
                rekeyed.append(("sync", SYNC_BARRIER, ordinal))
                ordinal += 1
            else:
                rekeyed.append(entry)
        thread_codes[tid] = rekeyed
