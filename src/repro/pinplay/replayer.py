"""Constrained (deterministic) replay of pinballs.

Replay re-executes the recorded per-thread logs while enforcing the recorded
global order over synchronization actions (``gseq``), like PinPlay enforcing
recorded shared-memory access order.  Scheduling between sync points is
deterministic: always advance the thread with the least filtered progress —
the flow-controlled balance the profile was recorded with.

Every analysis pass of the LoopPoint pipeline (BBV profiling, DCFG
construction, slicing) runs on a replay, so analysis is reproducible no
matter how noisy the original host was — requirement (1a) of the paper.

Block events go to observers through the batched
:class:`~repro.perf.ring.EventRing` hot path by default (same contract as
the engine: bit-identical observer state, batch-vectorized dispatch).  The
legacy per-event path remains for ``batch_events=False`` and is forced
whenever an ``entry_hook`` is set: hooks observe (and read
``exec_counts``) *between* events, which a batch by definition cannot
honor.

Marker-to-marker replay: :meth:`ConstrainedReplayer.fast_forward_to`
jumps the replay to a ``(PC, count)`` marker's cut without delivering
any event — the functional analogue of restoring a gem5 checkpoint at a
region boundary instead of simulating up to it — and
``run(until=end_marker)`` stops exactly at the end boundary.  The skip
reproduces the deterministic schedule bit-exactly, so observers attached
for the region see precisely the events a full replay delivers between
the two markers.
"""

from __future__ import annotations

from typing import (
    Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING,
)

import numpy as np

from ..config import default_batch_events
from ..dcfg.graph import ENTRY as DCFG_ENTRY
from ..errors import ReplayError
from ..exec_engine.engine import EngineResult
from ..obs.tracer import active_metrics
from ..exec_engine.observers import Observer
from ..isa.image import Program
from ..perf.ring import DEFAULT_CAPACITY, EventRing
from ..policy import WaitPolicy
from .pinball import Pinball

if TYPE_CHECKING:  # pragma: no cover - profiling imports pinplay at runtime
    from ..profiling.markers import Marker


class ConstrainedReplayer:
    """Replays a :class:`Pinball` deterministically."""

    def __init__(
        self,
        program: Program,
        pinball: Pinball,
        *,
        observers: Sequence[Observer] = (),
        quantum_instructions: int = 600,
        initial_exec_counts: Optional[List[List[int]]] = None,
        entry_hook=None,
        batch_events: Optional[bool] = None,
        batch_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if pinball.program_name != program.name:
            raise ReplayError(
                f"pinball was recorded for {pinball.program_name!r}, "
                f"not {program.name!r}"
            )
        self.program = program
        self.pinball = pinball
        self.observers = list(observers)
        #: Scheduling quantum in instructions (mirrors the engine's).
        self.quantum_instructions = quantum_instructions
        #: Called as ``entry_hook(tid, pos, entry)`` immediately *before* an
        #: entry is processed; used by region extraction to find cut points.
        self.entry_hook = entry_hook
        if batch_events is None:
            batch_events = default_batch_events()
        self.batch_events = batch_events
        self._batch_capacity = batch_capacity
        #: Per-thread index of the next unprocessed log entry.
        self.positions: List[int] = [0] * pinball.nthreads
        nthreads = pinball.nthreads
        nblocks = program.num_blocks
        if initial_exec_counts is not None:
            if len(initial_exec_counts) != nthreads:
                raise ReplayError("initial_exec_counts thread-count mismatch")
            self.exec_counts = [list(row) for row in initial_exec_counts]
        else:
            self.exec_counts = [[0] * nblocks for _ in range(nthreads)]
        self._ring: Optional[EventRing] = None
        self.total_instructions = 0
        self.filtered_instructions = 0
        self.per_thread_total = [0] * nthreads
        self.per_thread_filtered = [0] * nthreads
        self.num_events = 0
        #: Global sync-order cursor; persistent so :meth:`run` continues
        #: exactly where :meth:`fast_forward_to` left the recorded order.
        self._next_gseq = 0
        #: Global ``pc -> execution count`` for marker PCs this replay
        #: has tracked (the ``count`` coordinate of ``(PC, count)``
        #: markers is global, so a post-fast-forward ``run(until=...)``
        #: must start from the prefix's counts, not from zero).
        self._marker_counts: Dict[int, int] = {}
        self._fast_forwarded = False
        #: ``(tid, remaining_instructions)`` of the scheduling quantum
        #: that was in flight when a marker cut stopped the replay.  A
        #: cut generally lands mid-quantum; resuming must finish that
        #: thread's quantum (not grant a fresh one) or the interleaving
        #: diverges from an uninterrupted replay's.
        self._quantum_resume: Optional[tuple] = None

    def _exec_block(self, tid: int, bid: int, repeat: int) -> None:
        block = self.program.blocks[bid]
        start = self.exec_counts[tid][bid]
        self.exec_counts[tid][bid] = start + repeat
        n = block.n_instr * repeat
        self.total_instructions += n
        self.per_thread_total[tid] += n
        if not block.image.is_library:
            self.filtered_instructions += n
            self.per_thread_filtered[tid] += n
        for ob in self.observers:
            ob.on_block(tid, block, repeat, start)

    def fast_forward_to(
        self,
        marker: Marker,
        *,
        dcfg=None,
        track_pcs: Iterable[int] = (),
    ) -> int:
        """Fast-forward to ``marker``'s cut without re-executing blocks.

        The moral analogue of a gem5 checkpoint restore: replay state —
        per-thread log positions, execution counts, instruction
        counters, the recorded sync-order cursor — advances to the
        exact cut a full replay reaches just before the ``count``-th
        execution of ``marker.pc``, but no block or sync event is
        delivered to the attached observers and runs of block entries
        between stops are consumed whole by bisecting per-thread
        instruction prefix sums instead of being walked one entry at a
        time.  Scheduling decisions (least-filtered-first, quantum
        boundaries, the ``gseq`` gate) are reproduced exactly, so the
        cut is bit-identical to the one :meth:`run` would reach.

        ``track_pcs`` names additional marker PCs whose global
        execution counts must stay known across the skip — pass the end
        marker's PC here when the plan is ``fast_forward_to(start)``
        followed by ``run(until=end)``, because ``until`` counts are
        global from program start.

        ``dcfg``, when given, validates the jump against the dynamic
        control-flow graph first: a marker block the DCFG cannot reach
        from its entry can never trigger, and failing fast beats
        silently replaying to the end of the logs.

        Returns the number of log entries skipped.  Raises
        :class:`ReplayError` if the marker never triggers, falls inside
        a batched entry, or is unreachable per the DCFG.
        """
        if self.entry_hook is not None:
            raise ReplayError(
                "fast_forward_to is incompatible with entry_hook: hooks "
                "observe every entry, which a skip by definition omits"
            )
        program = self.program
        pcs = {marker.pc: program.block_at(marker.pc).bid}
        for pc in track_pcs:
            pcs[pc] = program.block_at(pc).bid
        target_bid = pcs[marker.pc]
        target_count = marker.count
        if dcfg is not None:
            reachable = dcfg.reachable_from(DCFG_ENTRY)
            for pc, bid in pcs.items():
                if bid not in reachable:
                    raise ReplayError(
                        f"marker pc {pc:#x} (bid {bid}) is unreachable "
                        f"in the DCFG: the fast-forward target would "
                        f"never trigger"
                    )
        counts = self._marker_counts
        for pc in pcs:
            counts.setdefault(pc, 0)
        pc_of = {bid: pc for pc, bid in pcs.items()}
        stop_bids = set(pc_of)
        self._fast_forwarded = True

        logs = self.pinball.logs
        nthreads = self.pinball.nthreads
        pos = self.positions
        quantum = self.quantum_instructions
        blocks = program.blocks
        nblocks = program.num_blocks
        n_by_bid = [b.n_instr for b in blocks]
        f_by_bid = [
            0 if b.image.is_library else b.n_instr for b in blocks
        ]

        # Per-thread skip tables: instruction prefix sums over the log
        # (sync entries contribute zero), the sorted positions that must
        # be handled individually (syncs and tracked marker blocks, with
        # an end-of-log sentinel), and the block entries' (index, bid,
        # repeat) columns for the bulk execution-count update.
        cum_t: List[np.ndarray] = []
        cum_f: List[np.ndarray] = []
        stops: List[np.ndarray] = []
        blk_idx: List[np.ndarray] = []
        blk_bid: List[np.ndarray] = []
        blk_rep: List[np.ndarray] = []
        for tid in range(nthreads):
            log = logs[tid]
            n = len(log)
            ent_t = [0] * n
            ent_f = [0] * n
            s_list: List[int] = []
            b_idx: List[int] = []
            b_bid: List[int] = []
            b_rep: List[int] = []
            for i, entry in enumerate(log):
                if entry[0] == "b":
                    bid = entry[1]
                    rep = entry[2]
                    ent_t[i] = n_by_bid[bid] * rep
                    ent_f[i] = f_by_bid[bid] * rep
                    b_idx.append(i)
                    b_bid.append(bid)
                    b_rep.append(rep)
                    if bid in stop_bids:
                        s_list.append(i)
                else:
                    s_list.append(i)
            s_list.append(n)
            cum_t.append(np.cumsum(np.array(ent_t, dtype=np.int64)))
            cum_f.append(np.cumsum(np.array(ent_f, dtype=np.int64)))
            stops.append(np.array(s_list, dtype=np.int64))
            blk_idx.append(np.array(b_idx, dtype=np.int64))
            blk_bid.append(np.array(b_bid, dtype=np.int64))
            blk_rep.append(np.array(b_rep, dtype=np.int64))

        ptt = list(self.per_thread_total)
        ptf = list(self.per_thread_filtered)
        next_gseq = self._next_gseq
        ends = [len(log) for log in logs]
        start_pos = list(pos)
        live = set(t for t in range(nthreads) if pos[t] < ends[t])
        searchsorted = np.searchsorted
        found = False
        resume = self._quantum_resume
        self._quantum_resume = None

        while live and not found:
            if resume is not None and resume[0] in live:
                candidates = [resume[0]]
                resume_round = True
            else:
                resume = None
                candidates = sorted(live, key=lambda t: (ptf[t], t))
                resume_round = False
            progressed = False
            for tid in candidates:
                log = logs[tid]
                p = pos[tid]
                end = ends[tid]
                t_cum = cum_t[tid]
                f_cum = cum_f[tid]
                t_stops = stops[tid]
                tt = ptt[tid]
                tf = ptf[tid]
                if resume is not None:
                    stop_at = tt + resume[1]
                    resume = None
                else:
                    stop_at = tt + quantum
                while tt < stop_at and p < end:
                    s = int(t_stops[searchsorted(t_stops, p)])
                    if s > p:
                        # Plain block entries up to the next stop: the
                        # quantum admits every entry whose pre-entry
                        # total is below ``stop_at`` (the per-event
                        # loop's exact rule), found by one bisect.
                        base = int(t_cum[p - 1]) if p else 0
                        j = int(searchsorted(t_cum, stop_at - tt + base))
                        new_p = j + 1
                        if new_p > s:
                            new_p = s
                        tt += int(t_cum[new_p - 1]) - base
                        tf += int(f_cum[new_p - 1]) - (
                            int(f_cum[p - 1]) if p else 0
                        )
                        p = new_p
                        progressed = True
                        continue
                    entry = log[p]
                    if entry[0] == "b":
                        bid = entry[1]
                        rep = entry[2]
                        pc = pc_of[bid]
                        c = counts[pc]
                        if bid == target_bid and c + rep > target_count:
                            if c != target_count:
                                raise ReplayError(
                                    f"fast-forward marker {marker} "
                                    f"falls inside a batched entry "
                                    f"(repeat {rep} spans counts "
                                    f"{c}..{c + rep})"
                                )
                            found = True
                            self._quantum_resume = (tid, stop_at - tt)
                            break
                        counts[pc] = c + rep
                        base = int(t_cum[p - 1]) if p else 0
                        tt += int(t_cum[p]) - base
                        tf += int(f_cum[p]) - (
                            int(f_cum[p - 1]) if p else 0
                        )
                        p += 1
                        progressed = True
                    else:
                        gseq = entry[4]
                        if gseq != next_gseq:
                            break  # not this thread's turn at the order
                        next_gseq += 1
                        p += 1
                        progressed = True
                pos[tid] = p
                ptt[tid] = tt
                ptf[tid] = tf
                if p >= end:
                    live.discard(tid)
                if found or progressed:
                    break
            if not progressed and not found and live:
                if resume_round:
                    continue  # blocked mid-quantum: fall back to the sort
                waiting = {
                    t: logs[t][pos[t]][4] for t in live
                    if logs[t][pos[t]][0] == "s"
                }
                raise ReplayError(
                    f"replay stuck during fast-forward: "
                    f"next_gseq={next_gseq}, thread sync heads "
                    f"{waiting} — corrupt or truncated pinball"
                )
        if not found:
            raise ReplayError(
                f"fast-forward target {marker} never reached "
                f"(global count stopped at {counts[marker.pc]})"
            )

        flat = np.asarray(self.exec_counts, dtype=np.int64).reshape(-1)
        skipped = 0
        for tid in range(nthreads):
            lo = int(searchsorted(blk_idx[tid], start_pos[tid]))
            hi = int(searchsorted(blk_idx[tid], pos[tid]))
            np.add.at(
                flat,
                blk_bid[tid][lo:hi] + tid * nblocks,
                blk_rep[tid][lo:hi],
            )
            skipped += pos[tid] - start_pos[tid]
        self.exec_counts = flat.reshape(nthreads, nblocks).tolist()
        self.total_instructions += sum(ptt) - sum(self.per_thread_total)
        self.filtered_instructions += sum(ptf) - sum(
            self.per_thread_filtered
        )
        self.per_thread_total = ptt
        self.per_thread_filtered = ptf
        self.num_events += skipped
        self._next_gseq = next_gseq
        reg = active_metrics()
        if reg is not None:
            reg.inc("replay.fast_forward.runs")
            reg.inc("replay.fast_forward.entries", skipped)
        return skipped

    def run(self, until: Optional[Marker] = None) -> EngineResult:
        """Replay, feeding observers; returns the summary.

        With ``until`` the replay stops exactly at the end marker's cut
        — just before the ``count``-th global execution of ``until.pc``
        — instead of at the end of the logs; combined with
        :meth:`fast_forward_to` this is marker-to-marker replay.  The
        ``count`` coordinate is global from program start, so after a
        fast-forward the PC must have been named in ``track_pcs``.
        """
        logs = self.pinball.logs
        nthreads = self.pinball.nthreads
        pos = self.positions
        hook = self.entry_hook
        blocks = self.program.blocks
        until_bid = -1
        until_count = -1
        until_c = 0
        if until is not None:
            until_bid = self.program.block_at(until.pc).bid
            base = self._marker_counts.get(until.pc)
            if base is None:
                if self._fast_forwarded:
                    raise ReplayError(
                        f"until marker pc {until.pc:#x} was not tracked "
                        f"across fast_forward_to (pass it via track_pcs): "
                        f"its global count at the cut is unknown"
                    )
                base = 0
            if base > until.count:
                raise ReplayError(
                    f"until marker {until} already passed: global count "
                    f"is {base} at the start of this run"
                )
            until_count = until.count
            until_c = base
        # The batch/legacy decision happens here, not at construction:
        # callers (region extraction) may assign entry_hook after __init__,
        # and hooks read per-event state (positions, exec_counts) between
        # events, which a batch by definition cannot keep fresh.
        ring = None
        if self.batch_events and hook is None:
            ring = self._ring = EventRing(
                blocks, nthreads, self.observers,
                capacity=self._batch_capacity,
                initial_exec_counts=self.exec_counts,
            )
        if ring is not None:
            ring_rows = ring.buffers()
            ring_append_row = ring_rows.append
            ring_encode = ring.encode
            ring_capacity = ring.capacity
            ring_flush = ring.flush
            flush_on_sync = ring.flush_on_sync
        ends = [len(log) for log in logs]
        next_gseq = self._next_gseq
        live = set(tid for tid in range(nthreads) if pos[tid] < ends[tid])
        stopped = False
        resume = self._quantum_resume
        self._quantum_resume = None

        while live and not stopped:
            if resume is not None and resume[0] in live:
                # A marker cut interrupted this thread mid-quantum:
                # finish that quantum first, exactly as an uninterrupted
                # replay would have.
                candidates = [resume[0]]
                resume_round = True
            else:
                resume = None
                # Deterministic balance: least filtered progress first.
                candidates = sorted(
                    live, key=lambda t: (self.per_thread_filtered[t], t)
                )
                resume_round = False
            progressed = False
            for tid in candidates:
                log = logs[tid]
                if resume is not None:
                    stop_at = self.per_thread_total[tid] + resume[1]
                    resume = None
                else:
                    stop_at = (
                        self.per_thread_total[tid] + self.quantum_instructions
                    )
                if ring is not None:
                    ptt = self.per_thread_total[tid]
                    ptf = self.per_thread_filtered[tid]
                    while ptt < stop_at and pos[tid] < ends[tid]:
                        entry = log[pos[tid]]
                        if entry[0] == "b":
                            bid = entry[1]
                            repeat = entry[2]
                            if bid == until_bid:
                                if until_c + repeat > until_count:
                                    if until_c != until_count:
                                        raise ReplayError(
                                            f"until marker {until} falls "
                                            f"inside a batched entry"
                                        )
                                    stopped = True
                                    self._quantum_resume = (
                                        tid, stop_at - ptt
                                    )
                                    break
                                until_c += repeat
                            block = blocks[bid]
                            n = block.n_instr * repeat
                            ptt += n
                            if not block.image.is_library:
                                ptf += n
                                self.filtered_instructions += n
                            self.total_instructions += n
                            ring_append_row(ring_encode(tid, bid, repeat))
                            if len(ring_rows) >= ring_capacity:
                                ring_flush()
                        else:
                            _, kind, obj_id, response, gseq = entry
                            if gseq != next_gseq:
                                break  # not this thread's turn at the order
                            next_gseq += 1
                            if flush_on_sync:
                                ring_flush()
                            for ob in self.observers:
                                ob.on_sync(tid, kind, obj_id, response, gseq)
                        pos[tid] += 1
                        self.num_events += 1
                        progressed = True
                    self.per_thread_total[tid] = ptt
                    self.per_thread_filtered[tid] = ptf
                else:
                    while (
                        self.per_thread_total[tid] < stop_at
                        and pos[tid] < ends[tid]
                    ):
                        entry = log[pos[tid]]
                        if entry[0] == "b":
                            if entry[1] == until_bid:
                                repeat = entry[2]
                                if until_c + repeat > until_count:
                                    if until_c != until_count:
                                        raise ReplayError(
                                            f"until marker {until} falls "
                                            f"inside a batched entry"
                                        )
                                    stopped = True
                                    self._quantum_resume = (
                                        tid,
                                        stop_at - self.per_thread_total[tid],
                                    )
                                    break
                                until_c += repeat
                            if hook is not None:
                                hook(tid, pos[tid], entry)
                            self._exec_block(tid, entry[1], entry[2])
                        else:
                            _, kind, obj_id, response, gseq = entry
                            if gseq != next_gseq:
                                break  # not this thread's turn at the order
                            if hook is not None:
                                hook(tid, pos[tid], entry)
                            next_gseq += 1
                            for ob in self.observers:
                                ob.on_sync(tid, kind, obj_id, response, gseq)
                        pos[tid] += 1
                        self.num_events += 1
                        progressed = True
                if pos[tid] >= ends[tid]:
                    live.discard(tid)
                if stopped or progressed:
                    break
            if not progressed and not stopped and live:
                if resume_round:
                    continue  # blocked mid-quantum: fall back to the sort
                waiting = {
                    t: logs[t][pos[t]][4] for t in live
                    if logs[t][pos[t]][0] == "s"
                }
                raise ReplayError(
                    f"replay stuck: next_gseq={next_gseq}, thread sync heads "
                    f"{waiting} — corrupt or truncated pinball"
                )

        self._next_gseq = next_gseq
        if until is not None:
            self._marker_counts[until.pc] = until_c
        if ring is not None:
            self.exec_counts = ring.exec_counts()  # flushes the ring
        for ob in self.observers:
            ob.on_finish()
        reg = active_metrics()
        if reg is not None:  # once per replay, never per event
            reg.inc("replay.runs")
            reg.inc("replay.events", self.num_events)
            if ring is not None:
                reg.inc("replay.ring.flushes", ring.flushes)
                reg.inc("replay.ring.small_flushes", ring.small_flushes)
                reg.inc("replay.ring.events_flushed", ring.events_flushed)
        return EngineResult(
            total_instructions=self.total_instructions,
            filtered_instructions=self.filtered_instructions,
            per_thread_total=list(self.per_thread_total),
            per_thread_filtered=list(self.per_thread_filtered),
            exec_counts=[list(row) for row in self.exec_counts],
            num_events=self.num_events,
            wait_policy=WaitPolicy(self.pinball.wait_policy),
            seed=self.pinball.seed,
        )
