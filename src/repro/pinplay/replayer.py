"""Constrained (deterministic) replay of pinballs.

Replay re-executes the recorded per-thread logs while enforcing the recorded
global order over synchronization actions (``gseq``), like PinPlay enforcing
recorded shared-memory access order.  Scheduling between sync points is
deterministic: always advance the thread with the least filtered progress —
the flow-controlled balance the profile was recorded with.

Every analysis pass of the LoopPoint pipeline (BBV profiling, DCFG
construction, slicing) runs on a replay, so analysis is reproducible no
matter how noisy the original host was — requirement (1a) of the paper.

Block events go to observers through the batched
:class:`~repro.perf.ring.EventRing` hot path by default (same contract as
the engine: bit-identical observer state, batch-vectorized dispatch).  The
legacy per-event path remains for ``batch_events=False`` and is forced
whenever an ``entry_hook`` is set: hooks observe (and read
``exec_counts``) *between* events, which a batch by definition cannot
honor.

Marker-to-marker replay: :meth:`ConstrainedReplayer.fast_forward_to`
jumps the replay to a ``(PC, count)`` marker's cut without delivering
any event — the functional analogue of restoring a gem5 checkpoint at a
region boundary instead of simulating up to it — and
``run(until=end_marker)`` stops exactly at the end boundary.  The skip
reproduces the deterministic schedule bit-exactly, so observers attached
for the region see precisely the events a full replay delivers between
the two markers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple,
    TYPE_CHECKING,
)

import numpy as np

from ..config import default_batch_events
from ..dcfg.graph import ENTRY as DCFG_ENTRY
from ..errors import ReplayError
from ..exec_engine.engine import EngineResult
from ..obs.tracer import active_metrics
from ..exec_engine.observers import Observer
from ..isa.image import Program
from ..perf.ring import DEFAULT_CAPACITY, EventRing
from ..policy import WaitPolicy
from .pinball import Pinball

if TYPE_CHECKING:  # pragma: no cover - profiling imports pinplay at runtime
    from ..profiling.markers import Marker


@dataclass
class ReplayCursor:
    """A replay's scalar scheduling state at one cut.

    Everything :meth:`ConstrainedReplayer.scout_filtered_cut` needs to
    re-run the deterministic schedule from a past cut — per-thread log
    positions, instruction counters, the sync-order cursor, the
    in-flight quantum and the tracked global marker counts.  Execution
    counts are deliberately *not* here (they are the heavy part); the
    live sampler reconstructs them in bulk via
    :meth:`ConstrainedReplayer.advance_exec_counts`.
    """

    positions: List[int]
    per_thread_total: List[int]
    per_thread_filtered: List[int]
    next_gseq: int
    quantum_resume: Optional[tuple]
    marker_counts: Dict[int, int]


@dataclass
class RegionScout:
    """What one boundary scout learned about the next region.

    ``end is None`` means the logs ran out first: the region is the
    program's tail and has no closing marker.  ``probe`` is the first
    marker execution at/after the probe target (it may equal ``end``).
    All counters are absolute (from program start) at the end cut.
    """

    probe: Optional["Marker"]
    end: Optional["Marker"]
    filtered: int
    total: int
    per_thread_total: List[int]
    per_thread_filtered: List[int]
    counts_at_end: Dict[int, int]
    end_positions: List[int]


@dataclass
class FilteredCut:
    """The cut at the first entry whose pre-entry filtered count meets a
    target coordinate (how live mode places warmup starts)."""

    positions: List[int]
    total: int
    filtered: int


class _WalkState:
    """Mutable scalar state threaded through :func:`_walk`."""

    __slots__ = ("pos", "ptt", "ptf", "next_gseq", "counts",
                 "quantum_resume")

    def __init__(self, pos, ptt, ptf, next_gseq, counts, quantum_resume):
        self.pos = pos
        self.ptt = ptt
        self.ptf = ptf
        self.next_gseq = next_gseq
        self.counts = counts
        self.quantum_resume = quantum_resume


class _SkipIndex:
    """Per-thread skip tables for one (pinball, stop-bid set).

    Instruction prefix sums over each log (sync entries contribute
    zero), the sorted positions that must be handled individually
    (syncs and stop-set marker blocks, with an end-of-log sentinel),
    and the block entries' (index, bid, repeat) columns for bulk
    execution-count updates.  Built once and cached on the replayer:
    live sampling fast-forwards and scouts the same pinball once per
    region, and rebuilding these tables per jump would be quadratic.
    """

    def __init__(self, program: Program, pinball: Pinball,
                 stop_bids: FrozenSet[int]) -> None:
        blocks = program.blocks
        n_by_bid = [b.n_instr for b in blocks]
        f_by_bid = [0 if b.image.is_library else b.n_instr for b in blocks]
        self.pc_of = {bid: blocks[bid].pc for bid in stop_bids}
        self.cum_t: List[np.ndarray] = []
        self.cum_f: List[np.ndarray] = []
        self.stops: List[np.ndarray] = []
        self.blk_idx: List[np.ndarray] = []
        self.blk_bid: List[np.ndarray] = []
        self.blk_rep: List[np.ndarray] = []
        self.ends: List[int] = []
        for log in pinball.logs:
            n = len(log)
            ent_t = [0] * n
            ent_f = [0] * n
            s_list: List[int] = []
            b_idx: List[int] = []
            b_bid: List[int] = []
            b_rep: List[int] = []
            for i, entry in enumerate(log):
                if entry[0] == "b":
                    bid = entry[1]
                    rep = entry[2]
                    ent_t[i] = n_by_bid[bid] * rep
                    ent_f[i] = f_by_bid[bid] * rep
                    b_idx.append(i)
                    b_bid.append(bid)
                    b_rep.append(rep)
                    if bid in stop_bids:
                        s_list.append(i)
                else:
                    s_list.append(i)
            s_list.append(n)
            self.cum_t.append(np.cumsum(np.array(ent_t, dtype=np.int64)))
            self.cum_f.append(np.cumsum(np.array(ent_f, dtype=np.int64)))
            self.stops.append(np.array(s_list, dtype=np.int64))
            self.blk_idx.append(np.array(b_idx, dtype=np.int64))
            self.blk_bid.append(np.array(b_bid, dtype=np.int64))
            self.blk_rep.append(np.array(b_rep, dtype=np.int64))
            self.ends.append(n)

    def add_counts(self, flat: np.ndarray, start_pos: Sequence[int],
                   end_pos: Sequence[int], nblocks: int) -> int:
        """Bulk-add the block executions in ``[start_pos, end_pos)`` into
        a flattened ``nthreads x nblocks`` count array; returns the number
        of log entries spanned."""
        spanned = 0
        for tid in range(len(self.blk_idx)):
            lo = int(np.searchsorted(self.blk_idx[tid], start_pos[tid]))
            hi = int(np.searchsorted(self.blk_idx[tid], end_pos[tid]))
            np.add.at(
                flat,
                self.blk_bid[tid][lo:hi] + tid * nblocks,
                self.blk_rep[tid][lo:hi],
            )
            spanned += end_pos[tid] - start_pos[tid]
        return spanned


def _walk(
    logs,
    quantum: int,
    index: _SkipIndex,
    state: _WalkState,
    *,
    target_bid: int = -1,
    target_count: int = -1,
    marker_desc=None,
    boundary_abs: Optional[int] = None,
    probe_abs: Optional[int] = None,
    filtered_abs: Optional[int] = None,
) -> Tuple[bool, Optional[Tuple[int, int]], Optional[Tuple[int, int]]]:
    """Advance ``state`` along the deterministic schedule until a stop.

    Three stop modes (the caller picks one):

    - *marker target* (``target_bid``/``target_count``): stop just
      before the ``count``-th global execution of the target block —
      :meth:`ConstrainedReplayer.fast_forward_to`'s rule, verbatim.
    - *region boundary* (``boundary_abs``): stop at the first marker
      execution whose pre-entry global filtered count reaches the
      target; additionally records the first marker execution at/after
      ``probe_abs`` without stopping.  This is exactly the slicer's
      close-slice rule, so the scout's boundary is the boundary the
      offline :class:`~repro.profiling.slicer.LoopAlignedSlicer` cuts.
    - *filtered coordinate* (``filtered_abs``): stop at the first entry
      whose pre-entry global filtered count reaches the target — the
      warmup-cut rule of region extraction.

    Plain block runs between stops are consumed whole by bisecting the
    prefix sums; scheduling (least-filtered-first, quantum boundaries,
    the gseq gate, mid-quantum resume) matches :meth:`run` bit-exactly.
    Returns ``(found, probe, boundary)`` with markers as (pc, count).
    """
    pos = state.pos
    ptt = state.ptt
    ptf = state.ptf
    counts = state.counts
    next_gseq = state.next_gseq
    pc_of = index.pc_of
    ends = index.ends
    nthreads = len(logs)
    gf = sum(ptf)
    live = set(t for t in range(nthreads) if pos[t] < ends[t])
    searchsorted = np.searchsorted
    found = False
    probe: Optional[Tuple[int, int]] = None
    boundary: Optional[Tuple[int, int]] = None
    resume = state.quantum_resume
    state.quantum_resume = None
    if filtered_abs is not None and gf >= filtered_abs:
        state.next_gseq = next_gseq
        state.quantum_resume = resume
        return True, None, None

    while live and not found:
        if resume is not None and resume[0] in live:
            candidates = [resume[0]]
            resume_round = True
        else:
            resume = None
            candidates = sorted(live, key=lambda t: (ptf[t], t))
            resume_round = False
        progressed = False
        for tid in candidates:
            log = logs[tid]
            p = pos[tid]
            end = ends[tid]
            t_cum = index.cum_t[tid]
            f_cum = index.cum_f[tid]
            t_stops = index.stops[tid]
            tt = ptt[tid]
            tf = ptf[tid]
            if resume is not None:
                stop_at = tt + resume[1]
                resume = None
            else:
                stop_at = tt + quantum
            while tt < stop_at and p < end:
                if filtered_abs is not None and gf >= filtered_abs:
                    found = True
                    state.quantum_resume = (tid, stop_at - tt)
                    break
                s = int(t_stops[searchsorted(t_stops, p)])
                if s > p:
                    # Plain block entries up to the next stop: the
                    # quantum admits every entry whose pre-entry
                    # total is below ``stop_at`` (the per-event
                    # loop's exact rule), found by one bisect.
                    base = int(t_cum[p - 1]) if p else 0
                    f_base = int(f_cum[p - 1]) if p else 0
                    j = int(searchsorted(t_cum, stop_at - tt + base))
                    new_p = j + 1
                    if new_p > s:
                        new_p = s
                    if filtered_abs is not None:
                        # Truncate the run so the entry that first sees
                        # the filtered target is the next to consume.
                        jj = int(searchsorted(
                            f_cum, f_base + (filtered_abs - gf)
                        ))
                        if jj + 1 < new_p:
                            new_p = jj + 1
                    df = int(f_cum[new_p - 1]) - f_base
                    tt += int(t_cum[new_p - 1]) - base
                    tf += df
                    gf += df
                    p = new_p
                    progressed = True
                    continue
                entry = log[p]
                if entry[0] == "b":
                    bid = entry[1]
                    rep = entry[2]
                    pc = pc_of[bid]
                    c = counts.get(pc, 0)
                    if boundary_abs is not None:
                        if (probe is None and probe_abs is not None
                                and gf >= probe_abs):
                            probe = (pc, c)
                        if gf >= boundary_abs:
                            boundary = (pc, c)
                            found = True
                            state.quantum_resume = (tid, stop_at - tt)
                            break
                    if bid == target_bid and c + rep > target_count:
                        if c != target_count:
                            raise ReplayError(
                                f"fast-forward marker {marker_desc} "
                                f"falls inside a batched entry "
                                f"(repeat {rep} spans counts "
                                f"{c}..{c + rep})"
                            )
                        found = True
                        state.quantum_resume = (tid, stop_at - tt)
                        break
                    counts[pc] = c + rep
                    base = int(t_cum[p - 1]) if p else 0
                    f_base = int(f_cum[p - 1]) if p else 0
                    df = int(f_cum[p]) - f_base
                    tt += int(t_cum[p]) - base
                    tf += df
                    gf += df
                    p += 1
                    progressed = True
                else:
                    gseq = entry[4]
                    if gseq != next_gseq:
                        break  # not this thread's turn at the order
                    next_gseq += 1
                    p += 1
                    progressed = True
            pos[tid] = p
            ptt[tid] = tt
            ptf[tid] = tf
            if p >= end:
                live.discard(tid)
            if found or progressed:
                break
        if not progressed and not found and live:
            if resume_round:
                continue  # blocked mid-quantum: fall back to the sort
            waiting = {
                t: logs[t][pos[t]][4] for t in live
                if logs[t][pos[t]][0] == "s"
            }
            raise ReplayError(
                f"replay stuck during fast-forward: "
                f"next_gseq={next_gseq}, thread sync heads "
                f"{waiting} — corrupt or truncated pinball"
            )
    state.next_gseq = next_gseq
    return found, probe, boundary


class ConstrainedReplayer:
    """Replays a :class:`Pinball` deterministically."""

    def __init__(
        self,
        program: Program,
        pinball: Pinball,
        *,
        observers: Sequence[Observer] = (),
        quantum_instructions: int = 600,
        initial_exec_counts: Optional[List[List[int]]] = None,
        entry_hook=None,
        batch_events: Optional[bool] = None,
        batch_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if pinball.program_name != program.name:
            raise ReplayError(
                f"pinball was recorded for {pinball.program_name!r}, "
                f"not {program.name!r}"
            )
        self.program = program
        self.pinball = pinball
        self.observers = list(observers)
        #: Scheduling quantum in instructions (mirrors the engine's).
        self.quantum_instructions = quantum_instructions
        #: Called as ``entry_hook(tid, pos, entry)`` immediately *before* an
        #: entry is processed; used by region extraction to find cut points.
        self.entry_hook = entry_hook
        if batch_events is None:
            batch_events = default_batch_events()
        self.batch_events = batch_events
        self._batch_capacity = batch_capacity
        #: Per-thread index of the next unprocessed log entry.
        self.positions: List[int] = [0] * pinball.nthreads
        nthreads = pinball.nthreads
        nblocks = program.num_blocks
        if initial_exec_counts is not None:
            if len(initial_exec_counts) != nthreads:
                raise ReplayError("initial_exec_counts thread-count mismatch")
            self.exec_counts = [list(row) for row in initial_exec_counts]
        else:
            self.exec_counts = [[0] * nblocks for _ in range(nthreads)]
        self._ring: Optional[EventRing] = None
        self.total_instructions = 0
        self.filtered_instructions = 0
        self.per_thread_total = [0] * nthreads
        self.per_thread_filtered = [0] * nthreads
        self.num_events = 0
        #: Global sync-order cursor; persistent so :meth:`run` continues
        #: exactly where :meth:`fast_forward_to` left the recorded order.
        self._next_gseq = 0
        #: Global ``pc -> execution count`` for marker PCs this replay
        #: has tracked (the ``count`` coordinate of ``(PC, count)``
        #: markers is global, so a post-fast-forward ``run(until=...)``
        #: must start from the prefix's counts, not from zero).
        self._marker_counts: Dict[int, int] = {}
        self._fast_forwarded = False
        #: Cached per-thread skip tables, keyed by stop-bid set: live
        #: sampling jumps the same pinball once per region.
        self._skip_indexes: Dict[FrozenSet[int], _SkipIndex] = {}
        #: ``(tid, remaining_instructions)`` of the scheduling quantum
        #: that was in flight when a marker cut stopped the replay.  A
        #: cut generally lands mid-quantum; resuming must finish that
        #: thread's quantum (not grant a fresh one) or the interleaving
        #: diverges from an uninterrupted replay's.
        self._quantum_resume: Optional[tuple] = None

    def _exec_block(self, tid: int, bid: int, repeat: int) -> None:
        block = self.program.blocks[bid]
        start = self.exec_counts[tid][bid]
        self.exec_counts[tid][bid] = start + repeat
        n = block.n_instr * repeat
        self.total_instructions += n
        self.per_thread_total[tid] += n
        if not block.image.is_library:
            self.filtered_instructions += n
            self.per_thread_filtered[tid] += n
        for ob in self.observers:
            ob.on_block(tid, block, repeat, start)

    def fast_forward_to(
        self,
        marker: Marker,
        *,
        dcfg=None,
        track_pcs: Iterable[int] = (),
    ) -> int:
        """Fast-forward to ``marker``'s cut without re-executing blocks.

        The moral analogue of a gem5 checkpoint restore: replay state —
        per-thread log positions, execution counts, instruction
        counters, the recorded sync-order cursor — advances to the
        exact cut a full replay reaches just before the ``count``-th
        execution of ``marker.pc``, but no block or sync event is
        delivered to the attached observers and runs of block entries
        between stops are consumed whole by bisecting per-thread
        instruction prefix sums instead of being walked one entry at a
        time.  Scheduling decisions (least-filtered-first, quantum
        boundaries, the ``gseq`` gate) are reproduced exactly, so the
        cut is bit-identical to the one :meth:`run` would reach.

        ``track_pcs`` names additional marker PCs whose global
        execution counts must stay known across the skip — pass the end
        marker's PC here when the plan is ``fast_forward_to(start)``
        followed by ``run(until=end)``, because ``until`` counts are
        global from program start.

        ``dcfg``, when given, validates the jump against the dynamic
        control-flow graph first: a marker block the DCFG cannot reach
        from its entry can never trigger, and failing fast beats
        silently replaying to the end of the logs.

        Returns the number of log entries skipped.  Raises
        :class:`ReplayError` if the marker never triggers, falls inside
        a batched entry, or is unreachable per the DCFG.
        """
        if self.entry_hook is not None:
            raise ReplayError(
                "fast_forward_to is incompatible with entry_hook: hooks "
                "observe every entry, which a skip by definition omits"
            )
        program = self.program
        pcs = {marker.pc: program.block_at(marker.pc).bid}
        for pc in track_pcs:
            pcs[pc] = program.block_at(pc).bid
        target_bid = pcs[marker.pc]
        target_count = marker.count
        if dcfg is not None:
            reachable = dcfg.reachable_from(DCFG_ENTRY)
            for pc, bid in pcs.items():
                if bid not in reachable:
                    raise ReplayError(
                        f"marker pc {pc:#x} (bid {bid}) is unreachable "
                        f"in the DCFG: the fast-forward target would "
                        f"never trigger"
                    )
        counts = self._marker_counts
        for pc in pcs:
            counts.setdefault(pc, 0)
        self._fast_forwarded = True

        nthreads = self.pinball.nthreads
        nblocks = program.num_blocks
        index = self._skip_index(frozenset(pcs.values()))
        state = _WalkState(
            pos=list(self.positions),
            ptt=list(self.per_thread_total),
            ptf=list(self.per_thread_filtered),
            next_gseq=self._next_gseq,
            counts=counts,
            quantum_resume=self._quantum_resume,
        )
        self._quantum_resume = None
        found, _, _ = _walk(
            self.pinball.logs, self.quantum_instructions, index, state,
            target_bid=target_bid, target_count=target_count,
            marker_desc=marker,
        )
        if not found:
            raise ReplayError(
                f"fast-forward target {marker} never reached "
                f"(global count stopped at {counts[marker.pc]})"
            )

        flat = np.asarray(self.exec_counts, dtype=np.int64).reshape(-1)
        skipped = index.add_counts(flat, self.positions, state.pos, nblocks)
        self.exec_counts = flat.reshape(nthreads, nblocks).tolist()
        self.positions = state.pos
        self.total_instructions += (
            sum(state.ptt) - sum(self.per_thread_total)
        )
        self.filtered_instructions += (
            sum(state.ptf) - sum(self.per_thread_filtered)
        )
        self.per_thread_total = state.ptt
        self.per_thread_filtered = state.ptf
        self.num_events += skipped
        self._next_gseq = state.next_gseq
        self._quantum_resume = state.quantum_resume
        reg = active_metrics()
        if reg is not None:
            reg.inc("replay.fast_forward.runs")
            reg.inc("replay.fast_forward.entries", skipped)
        return skipped

    def _skip_index(self, stop_bids: FrozenSet[int]) -> _SkipIndex:
        """The per-thread skip tables for this stop set, built once."""
        index = self._skip_indexes.get(stop_bids)
        if index is None:
            index = _SkipIndex(self.program, self.pinball, stop_bids)
            self._skip_indexes[stop_bids] = index
        return index

    def _stop_bids(self, marker_pcs: Iterable[int]) -> FrozenSet[int]:
        return frozenset(
            self.program.block_at(pc).bid for pc in marker_pcs
        )

    def cursor(self) -> ReplayCursor:
        """Snapshot the scalar scheduling state at the current cut."""
        return ReplayCursor(
            positions=list(self.positions),
            per_thread_total=list(self.per_thread_total),
            per_thread_filtered=list(self.per_thread_filtered),
            next_gseq=self._next_gseq,
            quantum_resume=self._quantum_resume,
            marker_counts=dict(self._marker_counts),
        )

    def sync_marker_counts(self, counts: Dict[int, int]) -> None:
        """Overwrite tracked global marker counts.

        Live sampling interleaves observed segments (where the slicer's
        tracker counts executions) with fast-forwards (where this
        replayer does); whichever side went dark resyncs from the other
        through this before the next ``until``/fast-forward target.
        """
        self._marker_counts.update(counts)

    def scout_region(
        self,
        marker_pcs: Iterable[int],
        *,
        slice_target: int,
        probe_target: int,
        counts: Optional[Dict[int, int]] = None,
    ) -> RegionScout:
        """Look ahead from the current cut to the next region boundary.

        Pure lookahead on copied scalar state: the replay does not
        advance, no event is delivered.  The boundary rule is the
        slicer's — first marker execution whose accumulated filtered
        work since this cut reaches ``slice_target`` — so the scouted
        end marker is exactly where the offline slicer would close the
        slice.  ``probe_target`` likewise locates the first marker at
        or beyond the probe prefix (classification point).  ``counts``
        supplies the true global marker counts at this cut (defaults
        to this replayer's tracked counts).
        """
        index = self._skip_index(self._stop_bids(marker_pcs))
        state = _WalkState(
            pos=list(self.positions),
            ptt=list(self.per_thread_total),
            ptf=list(self.per_thread_filtered),
            next_gseq=self._next_gseq,
            counts=dict(self._marker_counts if counts is None else counts),
            quantum_resume=self._quantum_resume,
        )
        gf0 = sum(state.ptf)
        gt0 = sum(state.ptt)
        found, probe, end = _walk(
            self.pinball.logs, self.quantum_instructions, index, state,
            boundary_abs=gf0 + slice_target,
            probe_abs=gf0 + probe_target,
        )
        from ..profiling.markers import Marker
        return RegionScout(
            probe=None if probe is None else Marker(*probe),
            end=None if not found else Marker(*end),
            filtered=sum(state.ptf) - gf0,
            total=sum(state.ptt) - gt0,
            per_thread_total=state.ptt,
            per_thread_filtered=state.ptf,
            counts_at_end=state.counts,
            end_positions=state.pos,
        )

    def scout_filtered_cut(
        self,
        marker_pcs: Iterable[int],
        *,
        cursor: ReplayCursor,
        target_filtered: int,
    ) -> FilteredCut:
        """Locate the first entry at/after ``cursor`` whose pre-entry
        global filtered count reaches ``target_filtered``.

        This is region extraction's warmup-cut rule (the first hook
        call with ``filtered >= warmup_filtered``), replayed on copied
        scalar state without advancing this replayer.
        """
        index = self._skip_index(self._stop_bids(marker_pcs))
        state = _WalkState(
            pos=list(cursor.positions),
            ptt=list(cursor.per_thread_total),
            ptf=list(cursor.per_thread_filtered),
            next_gseq=cursor.next_gseq,
            counts=dict(cursor.marker_counts),
            quantum_resume=cursor.quantum_resume,
        )
        found, _, _ = _walk(
            self.pinball.logs, self.quantum_instructions, index, state,
            filtered_abs=target_filtered,
        )
        if not found:
            raise ReplayError(
                f"filtered coordinate {target_filtered} beyond end of "
                f"execution (stopped at {sum(state.ptf)})"
            )
        return FilteredCut(
            positions=state.pos,
            total=sum(state.ptt),
            filtered=sum(state.ptf),
        )

    def advance_exec_counts(
        self,
        base_counts: Sequence[Sequence[int]],
        start_positions: Sequence[int],
        end_positions: Sequence[int],
        marker_pcs: Iterable[int] = (),
    ) -> List[List[int]]:
        """Execution counts at a later cut, from a snapshot plus the log
        entries between the two cuts (one bulk scatter-add, no walk)."""
        nthreads = self.pinball.nthreads
        nblocks = self.program.num_blocks
        index = self._skip_index(self._stop_bids(marker_pcs))
        flat = np.asarray(base_counts, dtype=np.int64).reshape(-1).copy()
        index.add_counts(flat, start_positions, end_positions, nblocks)
        return flat.reshape(nthreads, nblocks).tolist()

    def run(
        self, until: Optional[Marker] = None, *, finish: bool = True
    ) -> EngineResult:
        """Replay, feeding observers; returns the summary.

        With ``until`` the replay stops exactly at the end marker's cut
        — just before the ``count``-th global execution of ``until.pc``
        — instead of at the end of the logs; combined with
        :meth:`fast_forward_to` this is marker-to-marker replay.  The
        ``count`` coordinate is global from program start, so after a
        fast-forward the PC must have been named in ``track_pcs``.

        ``finish=False`` suppresses the observers' ``on_finish`` —
        live sampling replays one execution as many ``until`` segments
        interleaved with fast-forwards, and only the last segment may
        finalize observers (the slicer treats a second finish as a
        hard error for exactly this reason).  Counters, positions and
        the EventRing flush behave identically either way, so a
        segmented replay's final :class:`EngineResult` is bit-identical
        to an unsegmented one's.
        """
        logs = self.pinball.logs
        nthreads = self.pinball.nthreads
        pos = self.positions
        hook = self.entry_hook
        blocks = self.program.blocks
        until_bid = -1
        until_count = -1
        until_c = 0
        if until is not None:
            until_bid = self.program.block_at(until.pc).bid
            base = self._marker_counts.get(until.pc)
            if base is None:
                if self._fast_forwarded:
                    raise ReplayError(
                        f"until marker pc {until.pc:#x} was not tracked "
                        f"across fast_forward_to (pass it via track_pcs): "
                        f"its global count at the cut is unknown"
                    )
                base = 0
            if base > until.count:
                raise ReplayError(
                    f"until marker {until} already passed: global count "
                    f"is {base} at the start of this run"
                )
            until_count = until.count
            until_c = base
        # The batch/legacy decision happens here, not at construction:
        # callers (region extraction) may assign entry_hook after __init__,
        # and hooks read per-event state (positions, exec_counts) between
        # events, which a batch by definition cannot keep fresh.
        ring = None
        if self.batch_events and hook is None:
            ring = self._ring = EventRing(
                blocks, nthreads, self.observers,
                capacity=self._batch_capacity,
                initial_exec_counts=self.exec_counts,
            )
        if ring is not None:
            ring_rows = ring.buffers()
            ring_append_row = ring_rows.append
            ring_encode = ring.encode
            ring_capacity = ring.capacity
            ring_flush = ring.flush
            flush_on_sync = ring.flush_on_sync
        ends = [len(log) for log in logs]
        next_gseq = self._next_gseq
        live = set(tid for tid in range(nthreads) if pos[tid] < ends[tid])
        stopped = False
        resume = self._quantum_resume
        self._quantum_resume = None

        while live and not stopped:
            if resume is not None and resume[0] in live:
                # A marker cut interrupted this thread mid-quantum:
                # finish that quantum first, exactly as an uninterrupted
                # replay would have.
                candidates = [resume[0]]
                resume_round = True
            else:
                resume = None
                # Deterministic balance: least filtered progress first.
                candidates = sorted(
                    live, key=lambda t: (self.per_thread_filtered[t], t)
                )
                resume_round = False
            progressed = False
            for tid in candidates:
                log = logs[tid]
                if resume is not None:
                    stop_at = self.per_thread_total[tid] + resume[1]
                    resume = None
                else:
                    stop_at = (
                        self.per_thread_total[tid] + self.quantum_instructions
                    )
                if ring is not None:
                    ptt = self.per_thread_total[tid]
                    ptf = self.per_thread_filtered[tid]
                    while ptt < stop_at and pos[tid] < ends[tid]:
                        entry = log[pos[tid]]
                        if entry[0] == "b":
                            bid = entry[1]
                            repeat = entry[2]
                            if bid == until_bid:
                                if until_c + repeat > until_count:
                                    if until_c != until_count:
                                        raise ReplayError(
                                            f"until marker {until} falls "
                                            f"inside a batched entry"
                                        )
                                    stopped = True
                                    self._quantum_resume = (
                                        tid, stop_at - ptt
                                    )
                                    break
                                until_c += repeat
                            block = blocks[bid]
                            n = block.n_instr * repeat
                            ptt += n
                            if not block.image.is_library:
                                ptf += n
                                self.filtered_instructions += n
                            self.total_instructions += n
                            ring_append_row(ring_encode(tid, bid, repeat))
                            if len(ring_rows) >= ring_capacity:
                                ring_flush()
                        else:
                            _, kind, obj_id, response, gseq = entry
                            if gseq != next_gseq:
                                break  # not this thread's turn at the order
                            next_gseq += 1
                            if flush_on_sync:
                                ring_flush()
                            for ob in self.observers:
                                ob.on_sync(tid, kind, obj_id, response, gseq)
                        pos[tid] += 1
                        self.num_events += 1
                        progressed = True
                    self.per_thread_total[tid] = ptt
                    self.per_thread_filtered[tid] = ptf
                else:
                    while (
                        self.per_thread_total[tid] < stop_at
                        and pos[tid] < ends[tid]
                    ):
                        entry = log[pos[tid]]
                        if entry[0] == "b":
                            if entry[1] == until_bid:
                                repeat = entry[2]
                                if until_c + repeat > until_count:
                                    if until_c != until_count:
                                        raise ReplayError(
                                            f"until marker {until} falls "
                                            f"inside a batched entry"
                                        )
                                    stopped = True
                                    self._quantum_resume = (
                                        tid,
                                        stop_at - self.per_thread_total[tid],
                                    )
                                    break
                                until_c += repeat
                            if hook is not None:
                                hook(tid, pos[tid], entry)
                            self._exec_block(tid, entry[1], entry[2])
                        else:
                            _, kind, obj_id, response, gseq = entry
                            if gseq != next_gseq:
                                break  # not this thread's turn at the order
                            if hook is not None:
                                hook(tid, pos[tid], entry)
                            next_gseq += 1
                            for ob in self.observers:
                                ob.on_sync(tid, kind, obj_id, response, gseq)
                        pos[tid] += 1
                        self.num_events += 1
                        progressed = True
                if pos[tid] >= ends[tid]:
                    live.discard(tid)
                if stopped or progressed:
                    break
            if not progressed and not stopped and live:
                if resume_round:
                    continue  # blocked mid-quantum: fall back to the sort
                waiting = {
                    t: logs[t][pos[t]][4] for t in live
                    if logs[t][pos[t]][0] == "s"
                }
                raise ReplayError(
                    f"replay stuck: next_gseq={next_gseq}, thread sync heads "
                    f"{waiting} — corrupt or truncated pinball"
                )

        self._next_gseq = next_gseq
        if until is not None:
            self._marker_counts[until.pc] = until_c
        if ring is not None:
            self.exec_counts = ring.exec_counts()  # flushes the ring
        if finish:
            for ob in self.observers:
                ob.on_finish()
        reg = active_metrics()
        if reg is not None:  # once per replay, never per event
            reg.inc("replay.runs")
            reg.inc("replay.events", self.num_events)
            if ring is not None:
                reg.inc("replay.ring.flushes", ring.flushes)
                reg.inc("replay.ring.small_flushes", ring.small_flushes)
                reg.inc("replay.ring.events_flushed", ring.events_flushed)
        return EngineResult(
            total_instructions=self.total_instructions,
            filtered_instructions=self.filtered_instructions,
            per_thread_total=list(self.per_thread_total),
            per_thread_filtered=list(self.per_thread_filtered),
            exec_counts=[list(row) for row in self.exec_counts],
            num_events=self.num_events,
            wait_policy=WaitPolicy(self.pinball.wait_policy),
            seed=self.pinball.seed,
        )
