"""Constrained (deterministic) replay of pinballs.

Replay re-executes the recorded per-thread logs while enforcing the recorded
global order over synchronization actions (``gseq``), like PinPlay enforcing
recorded shared-memory access order.  Scheduling between sync points is
deterministic: always advance the thread with the least filtered progress —
the flow-controlled balance the profile was recorded with.

Every analysis pass of the LoopPoint pipeline (BBV profiling, DCFG
construction, slicing) runs on a replay, so analysis is reproducible no
matter how noisy the original host was — requirement (1a) of the paper.

Block events go to observers through the batched
:class:`~repro.perf.ring.EventRing` hot path by default (same contract as
the engine: bit-identical observer state, batch-vectorized dispatch).  The
legacy per-event path remains for ``batch_events=False`` and is forced
whenever an ``entry_hook`` is set: hooks observe (and read
``exec_counts``) *between* events, which a batch by definition cannot
honor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import default_batch_events
from ..errors import ReplayError
from ..exec_engine.engine import EngineResult
from ..obs.tracer import active_metrics
from ..exec_engine.observers import Observer
from ..isa.image import Program
from ..perf.ring import DEFAULT_CAPACITY, EventRing
from ..policy import WaitPolicy
from .pinball import Pinball


class ConstrainedReplayer:
    """Replays a :class:`Pinball` deterministically."""

    def __init__(
        self,
        program: Program,
        pinball: Pinball,
        *,
        observers: Sequence[Observer] = (),
        quantum_instructions: int = 600,
        initial_exec_counts: Optional[List[List[int]]] = None,
        entry_hook=None,
        batch_events: Optional[bool] = None,
        batch_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if pinball.program_name != program.name:
            raise ReplayError(
                f"pinball was recorded for {pinball.program_name!r}, "
                f"not {program.name!r}"
            )
        self.program = program
        self.pinball = pinball
        self.observers = list(observers)
        #: Scheduling quantum in instructions (mirrors the engine's).
        self.quantum_instructions = quantum_instructions
        #: Called as ``entry_hook(tid, pos, entry)`` immediately *before* an
        #: entry is processed; used by region extraction to find cut points.
        self.entry_hook = entry_hook
        if batch_events is None:
            batch_events = default_batch_events()
        self.batch_events = batch_events
        self._batch_capacity = batch_capacity
        #: Per-thread index of the next unprocessed log entry.
        self.positions: List[int] = [0] * pinball.nthreads
        nthreads = pinball.nthreads
        nblocks = program.num_blocks
        if initial_exec_counts is not None:
            if len(initial_exec_counts) != nthreads:
                raise ReplayError("initial_exec_counts thread-count mismatch")
            self.exec_counts = [list(row) for row in initial_exec_counts]
        else:
            self.exec_counts = [[0] * nblocks for _ in range(nthreads)]
        self._ring: Optional[EventRing] = None
        self.total_instructions = 0
        self.filtered_instructions = 0
        self.per_thread_total = [0] * nthreads
        self.per_thread_filtered = [0] * nthreads
        self.num_events = 0

    def _exec_block(self, tid: int, bid: int, repeat: int) -> None:
        block = self.program.blocks[bid]
        start = self.exec_counts[tid][bid]
        self.exec_counts[tid][bid] = start + repeat
        n = block.n_instr * repeat
        self.total_instructions += n
        self.per_thread_total[tid] += n
        if not block.image.is_library:
            self.filtered_instructions += n
            self.per_thread_filtered[tid] += n
        for ob in self.observers:
            ob.on_block(tid, block, repeat, start)

    def run(self) -> EngineResult:
        """Replay to completion, feeding observers; returns the summary."""
        logs = self.pinball.logs
        nthreads = self.pinball.nthreads
        pos = self.positions
        hook = self.entry_hook
        blocks = self.program.blocks
        # The batch/legacy decision happens here, not at construction:
        # callers (region extraction) may assign entry_hook after __init__,
        # and hooks read per-event state (positions, exec_counts) between
        # events, which a batch by definition cannot keep fresh.
        ring = None
        if self.batch_events and hook is None:
            ring = self._ring = EventRing(
                blocks, nthreads, self.observers,
                capacity=self._batch_capacity,
                initial_exec_counts=self.exec_counts,
            )
        if ring is not None:
            ring_tids, ring_bids, ring_repeats = ring.buffers()
            ring_append_tid = ring_tids.append
            ring_append_bid = ring_bids.append
            ring_append_repeat = ring_repeats.append
            ring_capacity = ring.capacity
            ring_flush = ring.flush
            flush_on_sync = ring.flush_on_sync
        ends = [len(log) for log in logs]
        next_gseq = 0
        live = set(tid for tid in range(nthreads) if pos[tid] < ends[tid])

        while live:
            # Deterministic balance: least filtered progress first.
            candidates = sorted(
                live, key=lambda t: (self.per_thread_filtered[t], t)
            )
            progressed = False
            for tid in candidates:
                log = logs[tid]
                stop_at = self.per_thread_total[tid] + self.quantum_instructions
                if ring is not None:
                    ptt = self.per_thread_total[tid]
                    ptf = self.per_thread_filtered[tid]
                    while ptt < stop_at and pos[tid] < ends[tid]:
                        entry = log[pos[tid]]
                        if entry[0] == "b":
                            bid = entry[1]
                            repeat = entry[2]
                            block = blocks[bid]
                            n = block.n_instr * repeat
                            ptt += n
                            if not block.image.is_library:
                                ptf += n
                                self.filtered_instructions += n
                            self.total_instructions += n
                            ring_append_tid(tid)
                            ring_append_bid(bid)
                            ring_append_repeat(repeat)
                            if len(ring_tids) >= ring_capacity:
                                ring_flush()
                        else:
                            _, kind, obj_id, response, gseq = entry
                            if gseq != next_gseq:
                                break  # not this thread's turn at the order
                            next_gseq += 1
                            if flush_on_sync:
                                ring_flush()
                            for ob in self.observers:
                                ob.on_sync(tid, kind, obj_id, response, gseq)
                        pos[tid] += 1
                        self.num_events += 1
                        progressed = True
                    self.per_thread_total[tid] = ptt
                    self.per_thread_filtered[tid] = ptf
                else:
                    while (
                        self.per_thread_total[tid] < stop_at
                        and pos[tid] < ends[tid]
                    ):
                        entry = log[pos[tid]]
                        if entry[0] == "b":
                            if hook is not None:
                                hook(tid, pos[tid], entry)
                            self._exec_block(tid, entry[1], entry[2])
                        else:
                            _, kind, obj_id, response, gseq = entry
                            if gseq != next_gseq:
                                break  # not this thread's turn at the order
                            if hook is not None:
                                hook(tid, pos[tid], entry)
                            next_gseq += 1
                            for ob in self.observers:
                                ob.on_sync(tid, kind, obj_id, response, gseq)
                        pos[tid] += 1
                        self.num_events += 1
                        progressed = True
                if pos[tid] >= ends[tid]:
                    live.discard(tid)
                if progressed:
                    break
            if not progressed and live:
                waiting = {
                    t: logs[t][pos[t]][4] for t in live
                    if logs[t][pos[t]][0] == "s"
                }
                raise ReplayError(
                    f"replay stuck: next_gseq={next_gseq}, thread sync heads "
                    f"{waiting} — corrupt or truncated pinball"
                )

        if ring is not None:
            self.exec_counts = ring.exec_counts()  # flushes the ring
        for ob in self.observers:
            ob.on_finish()
        reg = active_metrics()
        if reg is not None:  # once per replay, never per event
            reg.inc("replay.runs")
            reg.inc("replay.events", self.num_events)
            if ring is not None:
                reg.inc("replay.ring.flushes", ring.flushes)
                reg.inc("replay.ring.small_flushes", ring.small_flushes)
                reg.inc("replay.ring.events_flushed", ring.events_flushed)
        return EngineResult(
            total_instructions=self.total_instructions,
            filtered_instructions=self.filtered_instructions,
            per_thread_total=list(self.per_thread_total),
            per_thread_filtered=list(self.per_thread_filtered),
            exec_counts=[list(row) for row in self.exec_counts],
            num_events=self.num_events,
            wait_policy=WaitPolicy(self.pinball.wait_policy),
            seed=self.pinball.seed,
        )
