"""Pinball containers and serialization.

A real pinball holds memory/register snapshots, syscall injection files, and
shared-memory dependency files (``.text``/``.reg``/``.sel``/``.race``).  Our
execution state is the per-thread block-execution counters (which determine
every address stream and branch outcome) plus the event logs, so a pinball
here is exactly: logs + initial counters + the recorded global sync order
(embedded in the logs as ``gseq`` numbers).  Like real pinballs, they are
self-contained — replay does not need the :class:`ThreadProgram`, only the
static :class:`~repro.isa.image.Program` for block metadata (the "binary
image" a real pinball also embeds as its ``.text`` file).
"""

from __future__ import annotations

import gzip
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import ReplayError

#: Log entry forms:
#:   ``("b", bid, repeat)``                     block execution
#:   ``("s", kind, obj_id, response, gseq)``    synchronization action
LogEntry = Tuple
ThreadLog = List[LogEntry]

_MAGIC = "repro-pinball-v1"


@dataclass
class Pinball:
    """A whole-program execution recording."""

    program_name: str
    nthreads: int
    wait_policy: str
    seed: int
    logs: List[ThreadLog]
    total_instructions: int
    filtered_instructions: int
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.logs) != self.nthreads:
            raise ReplayError(
                f"pinball has {len(self.logs)} logs for {self.nthreads} threads"
            )

    @property
    def num_entries(self) -> int:
        return sum(len(log) for log in self.logs)

    def save(self, path: Union[str, Path]) -> None:
        """Write the pinball to ``path`` (gzip-compressed pickle)."""
        payload = (_MAGIC, self)
        with gzip.open(Path(path), "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Pinball":
        """Load a pinball written by :meth:`save`.

        Uses pickle: only load pinballs you produced yourself.
        """
        with gzip.open(Path(path), "rb") as fh:
            payload = pickle.load(fh)
        if not (isinstance(payload, tuple) and payload[0] == _MAGIC):
            raise ReplayError(f"{path} is not a repro pinball")
        pinball = payload[1]
        if not isinstance(pinball, cls):
            raise ReplayError(f"{path} does not contain a {cls.__name__}")
        return pinball


@dataclass
class RegionPinball(Pinball):
    """A region checkpoint cut out of a whole-program pinball.

    ``start_exec_counts`` snapshots each thread's per-block execution
    counters at the start of the *warmup* prefix — the register/memory-state
    analog that makes address streams and branch outcomes resume exactly
    where the full run left them.  ``detail_positions`` marks, per thread,
    the log index where warmup ends and the region of interest begins.
    """

    start_exec_counts: List[List[int]] = field(default_factory=list)
    detail_positions: List[int] = field(default_factory=list)
    region_id: int = -1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.start_exec_counts and len(self.start_exec_counts) != self.nthreads:
            raise ReplayError("start_exec_counts/thread-count mismatch")
        if self.detail_positions and len(self.detail_positions) != self.nthreads:
            raise ReplayError("detail_positions/thread-count mismatch")


def append_block(
    log: ThreadLog, bid: int, repeat: int, mergeable: bool = True
) -> None:
    """Append a block entry, merging with a same-block tail entry.

    Spin loops and barrier paths produce long runs of identical entries; the
    merge keeps recorded pinballs compact without losing information (block
    executions between two sync actions are order-free within a thread).
    Marker-eligible blocks (main-image loop headers) are recorded unmerged so
    that region cut points always fall on entry boundaries.
    """
    if mergeable and log:
        tail = log[-1]
        if tail[0] == "b" and tail[1] == bid:
            log[-1] = ("b", bid, tail[2] + repeat)
            return
    log.append(("b", bid, repeat))
