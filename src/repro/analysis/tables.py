"""Plain-text tables and bar charts for experiment output.

The benchmark harness prints every figure as rows/series (and a quick ASCII
bar rendering) so results can be eyeballed against the paper's plots.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """A column-aligned text table."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 50,
    log: bool = False,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars, optionally on a log scale (speedup plots)."""
    if not values:
        raise ValueError("bar_chart of no values")
    label_w = max(len(k) for k in values)
    vmax = max(values.values())
    if log:
        floor = min(v for v in values.values() if v > 0)
        span = math.log10(vmax / floor) or 1.0
    lines = [title] if title else []
    for key, val in values.items():
        if log and val > 0:
            frac = (math.log10(val / floor)) / span if span else 1.0
        else:
            frac = val / vmax if vmax else 0.0
        bar = "#" * max(0, int(frac * width))
        lines.append(f"{key.ljust(label_w)} |{bar} {_fmt(val)}{unit}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
