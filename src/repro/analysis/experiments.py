"""Shared evaluation cache for the benchmark harness.

Several figures reuse the same expensive artifacts (a workload's recording,
profile, clustering, full-run simulation).  :class:`EvaluationCache`
memoizes per-(workload, input, threads, policy, core-kind) pipelines and
results so each is computed once per benchmark session — and, when a
``cache_dir`` is given, hands every pipeline a persistent
:class:`~repro.parallel.artifacts.ArtifactCache` so the record/profile/
select stages also survive *across* sessions.

Region results and the full-run reference are cached independently: asking
for a result without the reference and later with it (or vice versa) never
re-simulates the regions — only the missing reference run is added.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..config import GAINESTOWN_8CORE, ReproScale, SystemConfig, get_scale
from ..core.looppoint import (
    LoopPointOptions,
    LoopPointPipeline,
    LoopPointResult,
)
from ..policy import WaitPolicy
from ..timing.metrics import SimMetrics
from ..workloads.base import Workload
from ..workloads.registry import get_workload

#: Cache keys: (name, input_class, nthreads, policy value, inorder flag).
_Key = Tuple[str, Optional[str], int, str, bool]


class EvaluationCache:
    """Memoizes pipelines and results across experiments.

    ``cache_dir`` makes the pipelines' stage artifacts disk-backed (shared
    across processes and sessions); ``jobs`` sets their region-simulation
    parallelism (``None`` honours ``REPRO_JOBS``).
    """

    def __init__(
        self,
        scale: Optional[ReproScale] = None,
        cache_dir: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> None:
        self.scale = scale or get_scale()
        self.cache_dir = cache_dir
        self.jobs = jobs
        self._workloads: Dict[Tuple[str, Optional[str], int], Workload] = {}
        self._pipelines: Dict[_Key, LoopPointPipeline] = {}
        #: Region-simulation results, always without the reference run.
        self._results: Dict[_Key, LoopPointResult] = {}
        #: Full-application reference metrics, added on demand.
        self._full_metrics: Dict[_Key, SimMetrics] = {}
        #: Region results merged with the reference, memoized for identity.
        self._full_results: Dict[_Key, LoopPointResult] = {}

    def workload(
        self, name: str, input_class: Optional[str] = None, nthreads: int = 8
    ) -> Workload:
        key = (name, input_class, nthreads)
        if key not in self._workloads:
            self._workloads[key] = get_workload(
                name, input_class, nthreads, scale=self.scale
            )
        return self._workloads[key]

    def system(self, nthreads: int, inorder: bool = False) -> SystemConfig:
        base = GAINESTOWN_8CORE.with_cores(
            max(GAINESTOWN_8CORE.num_cores, nthreads)
        )
        return base.as_inorder() if inorder else base

    def pipeline(
        self,
        name: str,
        input_class: Optional[str] = None,
        nthreads: int = 8,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        inorder: bool = False,
    ) -> LoopPointPipeline:
        key = (name, input_class, nthreads, wait_policy.value, inorder)
        if key not in self._pipelines:
            workload = self.workload(name, input_class, nthreads)
            self._pipelines[key] = LoopPointPipeline(
                workload,
                system=self.system(workload.nthreads, inorder),
                options=LoopPointOptions(
                    wait_policy=wait_policy,
                    scale=self.scale,
                    cache_dir=self.cache_dir,
                    jobs=self.jobs,
                ),
            )
        return self._pipelines[key]

    def looppoint_result(
        self,
        name: str,
        input_class: Optional[str] = None,
        nthreads: int = 8,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        inorder: bool = False,
        simulate_full: bool = True,
    ) -> LoopPointResult:
        """The pipeline result, with or without the full-run reference.

        Region simulations are cached per pipeline key; toggling
        ``simulate_full`` between calls only adds (or omits) the reference
        run — it never re-simulates the regions.
        """
        key: _Key = (name, input_class, nthreads, wait_policy.value, inorder)
        base = self._results.get(key)
        if base is None:
            pipeline = self.pipeline(
                name, input_class, nthreads, wait_policy, inorder
            )
            base = pipeline.run(simulate_full=False)
            self._results[key] = base
        if not simulate_full:
            return base
        if key not in self._full_results:
            if key not in self._full_metrics:
                pipeline = self.pipeline(
                    name, input_class, nthreads, wait_policy, inorder
                )
                self._full_metrics[key] = pipeline.simulate_full().metrics
            self._full_results[key] = replace(
                base, actual=self._full_metrics[key]
            )
        return self._full_results[key]


_GLOBAL_CACHE: Optional[EvaluationCache] = None


def get_cache() -> EvaluationCache:
    """The process-wide cache used by the benchmark session."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = EvaluationCache()
    return _GLOBAL_CACHE
