"""Shared evaluation cache for the benchmark harness.

Several figures reuse the same expensive artifacts (a workload's recording,
profile, clustering, full-run simulation).  :class:`EvaluationCache`
memoizes per-(workload, input, threads, policy, core-kind) pipelines and
results so each is computed once per benchmark session.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import GAINESTOWN_8CORE, ReproScale, SystemConfig, get_scale
from ..core.looppoint import (
    LoopPointOptions,
    LoopPointPipeline,
    LoopPointResult,
)
from ..policy import WaitPolicy
from ..workloads.base import Workload
from ..workloads.registry import get_workload

#: Cache keys: (name, input_class, nthreads, policy value, inorder flag).
_Key = Tuple[str, Optional[str], int, str, bool]


class EvaluationCache:
    """Memoizes pipelines and results across experiments."""

    def __init__(self, scale: Optional[ReproScale] = None) -> None:
        self.scale = scale or get_scale()
        self._workloads: Dict[Tuple[str, Optional[str], int], Workload] = {}
        self._pipelines: Dict[_Key, LoopPointPipeline] = {}
        self._results: Dict[Tuple[_Key, bool], LoopPointResult] = {}

    def workload(
        self, name: str, input_class: Optional[str] = None, nthreads: int = 8
    ) -> Workload:
        key = (name, input_class, nthreads)
        if key not in self._workloads:
            self._workloads[key] = get_workload(
                name, input_class, nthreads, scale=self.scale
            )
        return self._workloads[key]

    def system(self, nthreads: int, inorder: bool = False) -> SystemConfig:
        base = GAINESTOWN_8CORE.with_cores(
            max(GAINESTOWN_8CORE.num_cores, nthreads)
        )
        return base.as_inorder() if inorder else base

    def pipeline(
        self,
        name: str,
        input_class: Optional[str] = None,
        nthreads: int = 8,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        inorder: bool = False,
    ) -> LoopPointPipeline:
        key = (name, input_class, nthreads, wait_policy.value, inorder)
        if key not in self._pipelines:
            workload = self.workload(name, input_class, nthreads)
            self._pipelines[key] = LoopPointPipeline(
                workload,
                system=self.system(workload.nthreads, inorder),
                options=LoopPointOptions(
                    wait_policy=wait_policy, scale=self.scale
                ),
            )
        return self._pipelines[key]

    def looppoint_result(
        self,
        name: str,
        input_class: Optional[str] = None,
        nthreads: int = 8,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        inorder: bool = False,
        simulate_full: bool = True,
    ) -> LoopPointResult:
        key = (
            (name, input_class, nthreads, wait_policy.value, inorder),
            simulate_full,
        )
        if key not in self._results:
            pipeline = self.pipeline(
                name, input_class, nthreads, wait_policy, inorder
            )
            self._results[key] = pipeline.run(simulate_full=simulate_full)
        return self._results[key]


_GLOBAL_CACHE: Optional[EvaluationCache] = None


def get_cache() -> EvaluationCache:
    """The process-wide cache used by the benchmark session."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = EvaluationCache()
    return _GLOBAL_CACHE
