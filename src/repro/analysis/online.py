"""Live sampling: single-pass streaming profile+select with on-the-fly
extrapolation.

The offline pipeline replays the recorded execution once to slice it and
collect BBVs, clusters the fingerprints afterwards, then replays again to
extract the chosen regions.  Live mode (Pac-Sim's idea applied to the
LoopPoint substrate) folds all of that into a *single* constrained replay:

1. A boundary **scout** (:meth:`ConstrainedReplayer.scout_region`) looks
   ahead on copied scalar state and finds where the offline slicer would
   close the next region — without delivering a single event.
2. The replay runs to a **probe** cut (a fraction of the region), the
   accumulated BBV prefix is projected into signature space, and an
   incremental clusterer (:class:`~repro.clustering.online.OnlineClusterer`)
   classifies it: **matched** regions are fast-forwarded over
   (marker-to-marker skip, no events) and their timing is later
   extrapolated from a cluster representative; **novel** regions replay in
   full, are admitted as new representatives, and are cut into region
   pinballs for detailed simulation.
3. A running **error estimate** (per-cluster signature dispersion scaled
   by the representative's cycle cost) drives an Ekman-style two-phase
   top-up: clusters whose variance contribution dominates get one more
   detailed sample each until the estimate meets the target or the budget
   runs out.  The estimate is monotone non-increasing by construction
   (fixed per-cluster spread priors, growing sample counts).

With a non-positive novelty threshold every region is novel, nothing is
ever skipped, and the streaming replay — though segmented into
``run(until=...)`` pieces — is bit-identical to the offline profile
replay: same slices, same BBVs, same final engine state.  That is the
anchor the equivalence suite pins.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..clustering.online import (
    DEFAULT_RESERVOIR,
    OnlineCluster,
    OnlineClusterer,
    OnlineClusterOptions,
)
from ..clustering.simpoint import ClusterInfo
from ..core.extrapolation import extrapolate_metrics
from ..errors import ProfilingError
from ..exec_engine.engine import EngineResult
from ..isa.blocks import BasicBlock
from ..isa.image import Program
from ..obs.tracer import active_metrics, active_tracer
from ..pinplay.pinball import Pinball, RegionPinball
from ..pinplay.region import _renumber_gseq
from ..pinplay.replayer import ConstrainedReplayer, ReplayCursor
from ..profiling.filters import FilterPolicy
from ..profiling.markers import Marker
from ..profiling.profile_result import ProfileData
from ..profiling.slicer import LoopAlignedSlicer
from ..timing.mcsim import SimulationResult
from ..timing.metrics import SimMetrics


@dataclass(frozen=True)
class LiveOptions:
    """Knobs of the live sampling pass.

    ``threshold`` is the novelty distance in signature space; any value
    <= 0 forces every region novel (the offline-equivalent mode).
    ``probe_fraction`` is how much of a region is observed before
    classification.  ``error_target``/``max_topups`` bound the Ekman
    top-up pass: extra detailed samples are taken, highest expected
    error reduction first, until the running estimate drops to the
    target or the budget is spent.
    """

    threshold: float = 0.1
    probe_fraction: float = 0.3
    error_target: float = 0.02
    max_topups: int = 4
    reservoir_size: int = DEFAULT_RESERVOIR
    update_centroids: bool = True
    seed: int = 42

    def __post_init__(self) -> None:
        if not 0.0 < self.probe_fraction <= 1.0:
            raise ProfilingError(
                f"probe_fraction must be in (0, 1], got {self.probe_fraction}"
            )
        if self.error_target < 0.0:
            raise ProfilingError(
                f"error_target must be >= 0, got {self.error_target}"
            )
        if self.max_topups < 0:
            raise ProfilingError(
                f"max_topups must be >= 0, got {self.max_topups}"
            )

    def clusterer_options(self, projection_dim: int) -> OnlineClusterOptions:
        return OnlineClusterOptions(
            threshold=self.threshold,
            projection_dim=projection_dim,
            seed=self.seed,
            reservoir_size=self.reservoir_size,
            update_centroids=self.update_centroids,
        )


@dataclass
class LiveRegionRecord:
    """One region's fate during the streaming pass (plain types only)."""

    index: int
    start: Optional[Tuple[int, int]]
    end: Optional[Tuple[int, int]]
    filtered_instructions: int
    total_instructions: int
    cluster_id: int
    #: Distance to the matched centroid; ``None`` for novel regions.
    distance: Optional[float]
    #: This region opened a new cluster and was simulated in detail.
    novel: bool
    #: The replay fast-forwarded over this region's tail (no events).
    skipped: bool
    #: A detailed simulation result exists for this region (novel at
    #: streaming time, or sampled later by the top-up pass).
    simulated: bool


@dataclass
class LiveClusterReport:
    """One cluster's final accounting."""

    cluster_id: int
    representative: int
    members: List[int]
    mass: int
    dispersion: float
    #: Regions of this cluster that were simulated in detail, in the
    #: order they were sampled (representative first, then top-ups).
    samples: List[int]
    #: The shared Eq. (2) multiplier of this cluster's samples:
    #: cluster mass over the summed filtered counts of the samples.
    multiplier: float


@dataclass
class LiveReport:
    """Coverage, clustering, and error accounting of one live pass."""

    threshold: float
    probe_fraction: float
    num_regions: int
    num_simulated: int
    num_skipped: int
    num_clusters: int
    #: Filtered instruction mass observed event-by-event vs skipped over.
    filtered_total: int
    simulated_filtered: int
    extrapolated_filtered: int
    #: Error estimate after initial sampling, then after each top-up —
    #: monotone non-increasing by construction.
    error_estimates: List[float]
    topups: int
    clusters: List[LiveClusterReport] = field(default_factory=list)
    records: List[LiveRegionRecord] = field(default_factory=list)

    @property
    def final_error_estimate(self) -> float:
        return self.error_estimates[-1] if self.error_estimates else 0.0

    @property
    def extrapolated_fraction(self) -> float:
        if self.filtered_total <= 0:
            return 0.0
        return self.extrapolated_filtered / self.filtered_total


@dataclass
class LiveResult:
    """Everything one live pass produces (the ``live`` stage artifact)."""

    profile: ProfileData
    report: LiveReport
    region_results: List[SimulationResult]
    clusters: List[ClusterInfo]
    predicted: SimMetrics
    engine: EngineResult


class _RegionState:
    """Internal per-region bookkeeping (cuts, cluster decision)."""

    __slots__ = (
        "index", "start", "end", "cursor", "start_exec",
        "start_total", "start_filtered", "end_positions", "end_total",
        "end_filtered", "signature", "cluster_id", "distance", "novel",
        "skipped", "simulated",
    )

    def __init__(
        self, index: int, start: Optional[Marker], cursor: ReplayCursor,
        start_exec: List[List[int]],
    ) -> None:
        self.index = index
        self.start = start
        self.end: Optional[Marker] = None
        self.cursor = cursor
        self.start_exec = start_exec
        self.start_total = sum(cursor.per_thread_total)
        self.start_filtered = sum(cursor.per_thread_filtered)
        self.end_positions: List[int] = []
        self.end_total = 0
        self.end_filtered = 0
        self.signature: Optional[np.ndarray] = None
        self.cluster_id = -1
        self.distance: Optional[float] = None
        self.novel = False
        self.skipped = False
        self.simulated = False

    @property
    def filtered(self) -> int:
        return self.end_filtered - self.start_filtered

    @property
    def total(self) -> int:
        return self.end_total - self.start_total


class LiveSampler:
    """Drives one streaming profile+select+extrapolate pass.

    ``simulate`` is called once per detailed sample with a freshly cut
    :class:`RegionPinball` and must return its
    :class:`~repro.timing.mcsim.SimulationResult` (the pipeline passes a
    fresh constrained simulator per region, exactly as the offline
    checkpoint-driven path does).
    """

    def __init__(
        self,
        program: Program,
        pinball: Pinball,
        marker_blocks: Sequence[BasicBlock],
        slice_size: int,
        warmup_instructions: int,
        simulate: Callable[[RegionPinball], SimulationResult],
        options: Optional[LiveOptions] = None,
        filter_policy: Optional[FilterPolicy] = None,
    ) -> None:
        if slice_size <= 0:
            raise ProfilingError(
                f"slice_size must be positive, got {slice_size}"
            )
        if warmup_instructions < 0:
            raise ProfilingError("warmup_instructions must be >= 0")
        if not marker_blocks:
            raise ProfilingError("live sampling needs at least one marker")
        policy = filter_policy or FilterPolicy()
        if policy.exclude_routines:
            # The scout's boundary rule reuses the replayer's per-thread
            # filtered prefix sums, which know only the image-based
            # filter; a routine-excluding policy would place boundaries
            # differently than the slicer and silently break the
            # offline-equivalence guarantee.
            raise ProfilingError(
                "live sampling supports only image-based filtering "
                "(FilterPolicy with no exclude_routines)"
            )
        self.program = program
        self.pinball = pinball
        self.marker_blocks = list(marker_blocks)
        self.marker_pcs = tuple(sorted(b.pc for b in self.marker_blocks))
        self.slice_size = slice_size
        self.warmup_instructions = warmup_instructions
        self.simulate = simulate
        self.options = options or LiveOptions()
        self.policy = policy
        self.slicer = LoopAlignedSlicer(
            nthreads=pinball.nthreads,
            nblocks=program.num_blocks,
            marker_blocks=self.marker_blocks,
            slice_size=slice_size,
            filter_policy=policy,
        )
        self.replayer = ConstrainedReplayer(
            program, pinball, observers=(self.slicer,)
        )
        self.clusterer = OnlineClusterer(
            pinball.nthreads * program.num_blocks,
            self.options.clusterer_options(
                OnlineClusterOptions().projection_dim
            ),
        )
        self._states: List[_RegionState] = []
        self._probe_target = max(
            1, int(round(self.options.probe_fraction * slice_size))
        )

    # -- streaming pass -------------------------------------------------------

    def run(self) -> LiveResult:
        """Stream, simulate, top up, extrapolate: the whole live pass."""
        tracer = active_tracer()
        with tracer.span("live:stream", stage="live"):
            engine = self._stream()
        with tracer.span(
            "live:simulate", stage="live",
            regions=sum(1 for s in self._states if s.novel),
        ):
            results = self._simulate_novel()
        with tracer.span("live:topup", stage="live") as topup_span:
            estimates, topups = self._top_up(results)
            # The whole error-estimate time series (initial estimate,
            # then one point per top-up) rides on the span, so
            # ``repro-obs report`` can render the live convergence
            # curve without replaying anything.
            topup_span.set(
                "estimates", [round(e, 6) for e in estimates]
            )
        clusters = self._cluster_infos(results)
        region_results = [
            results[i] for i in sorted(results)
        ]
        predicted = extrapolate_metrics(region_results, clusters)
        profile = ProfileData(
            program_name=self.program.name,
            nthreads=self.pinball.nthreads,
            slice_size=self.slice_size,
            slices=self.slicer.slices,
            marker_pcs=list(self.marker_pcs),
            total_instructions=engine.total_instructions,
            filtered_instructions=engine.filtered_instructions,
        )
        report = self._report(estimates, topups)
        reg = active_metrics()
        if reg is not None:
            reg.inc("live.regions", report.num_regions)
            reg.inc("live.simulated", report.num_simulated)
            reg.inc("live.skipped", report.num_skipped)
            reg.inc("live.clusters", report.num_clusters)
            reg.inc("live.topups", report.topups)
            reg.inc(
                "live.extrapolated_filtered", report.extrapolated_filtered
            )
            if report.final_error_estimate is not None:
                reg.gauge(
                    "live.final_error_estimate",
                    report.final_error_estimate,
                )
        # Per-cluster uncertainty attribution from the estimator's own
        # frozen priors: without a reference run only the *shares* are
        # known; the pipeline upgrades them to signed error cycles when
        # a full-run simulation exists.
        from ..obs.attribution import (
            attribute_error, emit_attribution, live_scores,
        )

        emit_attribution(attribute_error(
            live_scores(
                report.clusters,
                sample_cycles={
                    idx: float(res.metrics.cycles)
                    for idx, res in results.items()
                },
                sample_filtered={
                    idx: float(self._states[idx].filtered)
                    for idx in results
                },
            ),
            predicted_cycles=float(predicted.cycles),
        ))
        return LiveResult(
            profile=profile,
            report=report,
            region_results=region_results,
            clusters=clusters,
            predicted=predicted,
            engine=engine,
        )

    def _stream(self) -> EngineResult:
        """The single replay: scout, probe, classify, skip or observe."""
        replayer = self.replayer
        slicer = self.slicer
        clusterer = self.clusterer
        marker_pcs = self.marker_pcs
        #: Canonical global marker counts at the current cut.  The
        #: slicer's tracker counts executions during observed segments;
        #: the replayer's walk counts them during skips; whichever side
        #: went dark resyncs from here before the next segment.
        canonical: Dict[int, int] = {pc: 0 for pc in marker_pcs}
        engine: Optional[EngineResult] = None
        while True:
            replayer.sync_marker_counts(canonical)
            state = _RegionState(
                index=len(self._states),
                start=slicer.slices[-1].end if self._states else None,
                cursor=replayer.cursor(),
                start_exec=[list(row) for row in replayer.exec_counts],
            )
            scout = replayer.scout_region(
                marker_pcs,
                slice_target=self.slice_size,
                probe_target=self._probe_target,
                counts=canonical,
            )
            if scout.end is None:
                # Tail region: no closing marker before the logs run
                # out.  It was (or is about to be) fully observed, so a
                # match costs nothing extra — classify the final BBV and
                # either extrapolate it from its cluster or simulate it.
                before = len(slicer.slices)
                engine = replayer.run()
                if len(slicer.slices) == before:
                    break  # nothing left after the last boundary
                canonical = slicer.tracker.snapshot()
                tail = slicer.slices[-1]
                self._finish_region(
                    state, end=None,
                    end_positions=list(replayer.positions),
                    end_total=replayer.total_instructions,
                    end_filtered=replayer.filtered_instructions,
                    bbv=tail.bbv,
                )
                break
            probe = scout.probe if scout.probe is not None else scout.end
            replayer.run(until=probe, finish=False)
            canonical = slicer.tracker.snapshot()
            replayer.sync_marker_counts(canonical)
            signature = clusterer.signature(slicer.live_peek_bbv())
            cluster, distance = clusterer.classify(signature)
            at_end = probe == scout.end
            if cluster is not None and not at_end:
                # Matched: fast-forward over the tail, close the slice
                # from the scout's exact counters, extrapolate later.
                replayer.fast_forward_to(scout.end, track_pcs=marker_pcs)
                canonical = dict(scout.counts_at_end)
                start_ptf = state.cursor.per_thread_filtered
                slicer.live_close_skipped(
                    scout.end,
                    filtered_instructions=scout.filtered,
                    total_instructions=scout.total,
                    per_thread_filtered=[
                        scout.per_thread_filtered[t] - start_ptf[t]
                        for t in range(self.pinball.nthreads)
                    ],
                    marker_counts=canonical,
                )
                state.skipped = True
            else:
                if not at_end:
                    replayer.run(until=scout.end, finish=False)
                    canonical = slicer.tracker.snapshot()
                    replayer.sync_marker_counts(canonical)
                slicer.live_close_at(scout.end)
            self._finish_region(
                state, end=scout.end,
                end_positions=list(replayer.positions),
                end_total=replayer.total_instructions,
                end_filtered=replayer.filtered_instructions,
                signature=signature,
                cluster=cluster,
                distance=distance,
            )
        if engine is None:  # pragma: no cover - tail always closes above
            engine = self.replayer.run()
        if len(slicer.slices) != len(self._states):
            raise ProfilingError(
                f"live pass desynchronized: {len(slicer.slices)} slices "
                f"vs {len(self._states)} regions"
            )
        return engine

    def _finish_region(
        self,
        state: _RegionState,
        end: Optional[Marker],
        end_positions: List[int],
        end_total: int,
        end_filtered: int,
        bbv: Optional[np.ndarray] = None,
        signature: Optional[np.ndarray] = None,
        cluster: Optional[OnlineCluster] = None,
        distance: float = float("inf"),
    ) -> None:
        """Record the region's cuts and fold it into the cluster model."""
        state.end = end
        state.end_positions = end_positions
        state.end_total = end_total
        state.end_filtered = end_filtered
        clusterer = self.clusterer
        if signature is None:
            assert bbv is not None
            signature = clusterer.signature(bbv)
            cluster, distance = clusterer.classify(signature)
        state.signature = signature
        if cluster is None:
            admitted = clusterer.admit(
                state.index, signature, mass=state.filtered
            )
            state.cluster_id = admitted.cluster_id
            state.novel = True
            state.simulated = True
        else:
            clusterer.attach(
                cluster, state.index, signature, distance,
                mass=state.filtered,
            )
            state.cluster_id = cluster.cluster_id
            state.distance = float(distance)
        self._states.append(state)

    # -- region pinball construction ------------------------------------------

    def region_pinball(self, index: int) -> RegionPinball:
        """Cut region ``index``'s checkpoint (warmup prefix + detail).

        Reconstructs the same three cuts
        :func:`~repro.pinplay.region.extract_region_pinballs` finds with
        its full extraction replay — warmup start at a global filtered
        coordinate, detail start at the region's start cut, detail end
        at its end cut — from the region-start snapshots the streaming
        pass kept, so no extra replay is ever needed.
        """
        state = self._states[index]
        replayer = self.replayer
        warm_target = max(
            0, state.start_filtered - self.warmup_instructions
        )
        # The deterministic schedule passes through every region-start
        # cut, so the first entry at/after the warmup coordinate is
        # found by walking from the latest snapshot strictly before it.
        starts = [s.start_filtered for s in self._states]
        snap = self._states[max(0, bisect_left(starts, warm_target) - 1)]
        warm = replayer.scout_filtered_cut(
            self.marker_pcs,
            cursor=snap.cursor,
            target_filtered=warm_target,
        )
        warm_counts = replayer.advance_exec_counts(
            snap.start_exec,
            snap.cursor.positions,
            warm.positions,
            self.marker_pcs,
        )
        pinball = self.pinball
        logs = [
            list(pinball.logs[tid][warm.positions[tid]:
                                   state.end_positions[tid]])
            for tid in range(pinball.nthreads)
        ]
        _renumber_gseq(logs)
        start = state.start
        end = state.end
        return RegionPinball(
            program_name=pinball.program_name,
            nthreads=pinball.nthreads,
            wait_policy=pinball.wait_policy,
            seed=pinball.seed,
            logs=logs,
            total_instructions=state.end_total - warm.total,
            filtered_instructions=state.end_filtered - warm.filtered,
            metadata={
                "warmup_total": state.start_total - warm.total,
                "warmup_filtered": state.start_filtered - warm.filtered,
                "detail_total": state.end_total - state.start_total,
                "detail_filtered": state.end_filtered - state.start_filtered,
                "start": None if start is None else (start.pc, start.count),
                "end": None if end is None else (end.pc, end.count),
            },
            start_exec_counts=warm_counts,
            detail_positions=[
                state.cursor.positions[tid] - warm.positions[tid]
                for tid in range(pinball.nthreads)
            ],
            region_id=state.index,
        )

    # -- detailed simulation and top-up ---------------------------------------

    def _simulate_novel(self) -> Dict[int, SimulationResult]:
        results: Dict[int, SimulationResult] = {}
        for state in self._states:
            if state.novel:
                results[state.index] = self.simulate(
                    self.region_pinball(state.index)
                )
        return results

    def _error_terms(
        self, results: Dict[int, SimulationResult]
    ) -> Tuple[List[float], float]:
        """Fixed per-cluster spread priors and the fixed denominator.

        The prior ``s_j`` is the cluster's signature dispersion scaled
        by its representative's cycles-per-filtered-instruction — a
        proxy for how much timing spread one representative may be
        hiding.  Both the priors and the denominator (the initial
        predicted total cycles) are frozen here; later top-ups only grow
        the per-cluster sample counts, which makes the running estimate
        monotone non-increasing by construction.
        """
        priors: List[float] = []
        denom = 0.0
        for cluster in self.clusterer.clusters:
            rep = cluster.representative
            rep_filtered = self._states[rep].filtered
            result = results.get(rep)
            cpi = (
                result.metrics.cycles / rep_filtered
                if result is not None and rep_filtered > 0 else 0.0
            )
            priors.append(cluster.dispersion * cpi)
            denom += cluster.mass * cpi
        return priors, denom

    @staticmethod
    def _error_estimate(
        clusters: Sequence[OnlineCluster],
        priors: Sequence[float],
        denom: float,
        samples: Dict[int, List[int]],
    ) -> float:
        if denom <= 0.0:
            return 0.0
        var = 0.0
        for cluster, prior in zip(clusters, priors):
            m = max(1, len(samples.get(cluster.cluster_id, ())))
            var += (cluster.mass * prior) ** 2 / m
        return float(np.sqrt(var)) / denom

    def _top_up(
        self, results: Dict[int, SimulationResult]
    ) -> Tuple[List[float], int]:
        """Ekman-style second phase: one more sample where it matters.

        Candidate order is deterministic: the cluster with the largest
        expected variance reduction first (Neyman-flavoured: reduction
        of ``(mass * prior)^2 / m`` from one more sample), and within a
        cluster the lowest-indexed unsampled reservoir exemplar, falling
        back to the lowest-indexed unsampled member.
        """
        self._samples = samples = {
            c.cluster_id: [c.representative]
            for c in self.clusterer.clusters
        }
        priors, denom = self._error_terms(results)
        clusters = self.clusterer.clusters
        estimates = [
            self._error_estimate(clusters, priors, denom, samples)
        ]
        topups = 0
        reg = active_metrics()
        while (
            topups < self.options.max_topups
            and estimates[-1] > self.options.error_target
        ):
            best = None
            best_gain = 0.0
            for cluster, prior in zip(clusters, priors):
                candidate = self._topup_candidate(cluster, samples)
                if candidate is None:
                    continue
                m = len(samples[cluster.cluster_id])
                gain = (cluster.mass * prior) ** 2 * (
                    1.0 / m - 1.0 / (m + 1)
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (cluster, candidate)
            if best is None or best_gain <= 0.0:
                break
            cluster, candidate = best
            results[candidate] = self.simulate(
                self.region_pinball(candidate)
            )
            self._states[candidate].simulated = True
            samples[cluster.cluster_id].append(candidate)
            topups += 1
            estimates.append(
                self._error_estimate(clusters, priors, denom, samples)
            )
            if reg is not None:
                reg.observe("live.error_estimate", estimates[-1])
        return estimates, topups

    def _topup_candidate(
        self, cluster: OnlineCluster, samples: Dict[int, List[int]]
    ) -> Optional[int]:
        taken = set(samples[cluster.cluster_id])
        exemplars = sorted(
            idx for idx, _ in cluster.reservoir if idx not in taken
        )
        if exemplars:
            return exemplars[0]
        rest = sorted(m for m in cluster.members if m not in taken)
        return rest[0] if rest else None

    # -- extrapolation --------------------------------------------------------

    def _cluster_infos(
        self, results: Dict[int, SimulationResult]
    ) -> List[ClusterInfo]:
        """Per-sample Eq. (2) weights.

        Each detailed sample of a cluster becomes one
        :class:`ClusterInfo` whose multiplier is shared across the
        cluster — cluster mass over the summed filtered counts of its
        samples — so the cluster's contribution is its mass times the
        filtered-weighted mean of its samples' metrics.  With one
        sample per cluster this reduces to the offline Eq. (2) exactly,
        and the masses reconcile to the whole run's filtered count
        either way (the LIVE001 lint invariant).
        """
        samples: Dict[int, List[int]] = getattr(
            self, "_samples", None
        ) or {
            c.cluster_id: [c.representative]
            for c in self.clusterer.clusters
        }
        infos: List[ClusterInfo] = []
        for cluster in self.clusterer.clusters:
            taken = [
                s for s in samples[cluster.cluster_id] if s in results
            ]
            sampled_filtered = sum(
                self._states[s].filtered for s in taken
            )
            if sampled_filtered <= 0:
                # A zero-work cluster (e.g. an all-library tail):
                # nothing to extrapolate, weight everything at zero.
                multiplier = 0.0
            else:
                multiplier = cluster.mass / sampled_filtered
            for pos, s in enumerate(taken):
                share = (
                    cluster.mass
                    * (self._states[s].filtered / sampled_filtered)
                    if sampled_filtered > 0 else 0.0
                )
                infos.append(ClusterInfo(
                    cluster_id=cluster.cluster_id,
                    representative=s,
                    members=list(cluster.members) if pos == 0 else [s],
                    instruction_mass=share,
                    multiplier=multiplier,
                ))
        return infos

    # -- reporting ------------------------------------------------------------

    def _report(
        self, estimates: List[float], topups: int
    ) -> LiveReport:
        samples: Dict[int, List[int]] = getattr(
            self, "_samples", None
        ) or {
            c.cluster_id: [c.representative]
            for c in self.clusterer.clusters
        }
        records = []
        simulated_filtered = 0
        extrapolated_filtered = 0
        for state in self._states:
            records.append(LiveRegionRecord(
                index=state.index,
                start=None if state.start is None else
                      (state.start.pc, state.start.count),
                end=None if state.end is None else
                    (state.end.pc, state.end.count),
                filtered_instructions=state.filtered,
                total_instructions=state.total,
                cluster_id=state.cluster_id,
                distance=state.distance,
                novel=state.novel,
                skipped=state.skipped,
                simulated=state.simulated,
            ))
            if state.simulated:
                simulated_filtered += state.filtered
            else:
                extrapolated_filtered += state.filtered
        cluster_reports = []
        for cluster in self.clusterer.clusters:
            taken = samples[cluster.cluster_id]
            sampled_filtered = sum(
                self._states[s].filtered for s in taken
            )
            cluster_reports.append(LiveClusterReport(
                cluster_id=cluster.cluster_id,
                representative=cluster.representative,
                members=list(cluster.members),
                mass=cluster.mass,
                dispersion=cluster.dispersion,
                samples=list(taken),
                multiplier=(
                    cluster.mass / sampled_filtered
                    if sampled_filtered > 0 else 0.0
                ),
            ))
        return LiveReport(
            threshold=self.options.threshold,
            probe_fraction=self.options.probe_fraction,
            num_regions=len(self._states),
            num_simulated=sum(1 for s in self._states if s.simulated),
            num_skipped=sum(1 for s in self._states if s.skipped),
            num_clusters=self.clusterer.k,
            filtered_total=sum(s.filtered for s in self._states),
            simulated_filtered=simulated_filtered,
            extrapolated_filtered=extrapolated_filtered,
            error_estimates=estimates,
            topups=topups,
            clusters=cluster_reports,
            records=records,
        )
