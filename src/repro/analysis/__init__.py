"""Experiment harness: shared evaluation cache, error math, text tables."""

from .errors import mean_absolute, geomean, signed_error_pct
from .tables import ascii_table, bar_chart
from .experiments import EvaluationCache, get_cache
from .export import write_csv, write_result_json, write_suite_json, result_summary

__all__ = [
    "mean_absolute",
    "geomean",
    "signed_error_pct",
    "ascii_table",
    "bar_chart",
    "EvaluationCache",
    "get_cache",
    "write_csv",
    "write_result_json",
    "write_suite_json",
    "result_summary",
]
