"""Small statistics helpers used across experiments."""

from __future__ import annotations

import math
from typing import Iterable


def mean_absolute(values: Iterable[float]) -> float:
    """Mean of absolute values (the paper's 'average absolute error')."""
    vals = [abs(v) for v in values]
    if not vals:
        raise ValueError("mean_absolute of no values")
    return sum(vals) / len(vals)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (speedup aggregation)."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def signed_error_pct(predicted: float, actual: float) -> float:
    """Signed percentage error of a prediction."""
    if actual == 0:
        raise ValueError("actual value is zero; error undefined")
    return 100.0 * (predicted - actual) / actual
