"""Export experiment results as CSV/JSON for external plotting.

The benchmark harness prints ASCII tables; this module gives downstream
users machine-readable bundles: per-figure CSV series, a JSON summary of a
:class:`~repro.core.looppoint.LoopPointResult`, and a whole-suite dump.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, Sequence, Union

from ..core.looppoint import LoopPointResult
from ..errors import ReproError
from ..timing.metrics import SimMetrics

PathLike = Union[str, Path]


def write_csv(
    path: PathLike,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write one figure's series as CSV; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        count = 0
        for row in rows:
            if len(row) != len(headers):
                raise ReproError(
                    f"row {count} has {len(row)} cells for "
                    f"{len(headers)} headers"
                )
            writer.writerow(row)
            count += 1
    return path


def metrics_dict(metrics: SimMetrics) -> Dict[str, float]:
    """A SimMetrics as a flat dict including derived rates."""
    out = dict(asdict(metrics))
    out.update(
        ipc=metrics.ipc,
        branch_mpki=metrics.branch_mpki,
        l1d_mpki=metrics.l1d_mpki,
        l2_mpki=metrics.l2_mpki,
        l3_mpki=metrics.l3_mpki,
    )
    return out


def result_summary(result: LoopPointResult) -> Dict[str, object]:
    """A JSON-ready summary of one pipeline result."""
    summary: Dict[str, object] = {
        "workload": result.workload,
        "wait_policy": result.wait_policy,
        "num_slices": result.num_slices,
        "num_looppoints": result.num_looppoints,
        "predicted": metrics_dict(result.predicted),
        "speedup": {
            "theoretical_serial": result.speedup.theoretical_serial,
            "theoretical_parallel": result.speedup.theoretical_parallel,
            "actual_serial": result.speedup.actual_serial,
            "actual_parallel": result.speedup.actual_parallel,
        },
        "regions": [
            {
                "region_id": r.region_id,
                "cycles": r.metrics.cycles,
                "instructions": r.metrics.instructions,
            }
            for r in result.region_results
        ],
    }
    if result.actual is not None:
        summary["actual"] = metrics_dict(result.actual)
        summary["runtime_error_pct"] = result.runtime_error_pct
        summary["metric_errors"] = result.metric_errors()
    return summary


def write_result_json(path: PathLike, result: LoopPointResult) -> Path:
    """Serialize one result to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_summary(result), indent=2, sort_keys=True))
    return path


def write_suite_json(
    path: PathLike, results: Sequence[LoopPointResult]
) -> Path:
    """Serialize a whole evaluation (one entry per workload/policy)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [result_summary(r) for r in results]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
