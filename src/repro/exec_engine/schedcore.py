"""Compiled thread streams: columnar tapes for the scheduler hot loop.

ROADMAP item 4: after the batched observer path landed, the wall clock of a
functional execution is the *scheduler* — per-round Python work plus one
generator ``send`` per event.  This module removes the per-event half.  A
:class:`~repro.runtime.thread.ThreadProgram` whose constructs are all
built-ins compiles into per-thread **tapes**: flat op lists whose block
runs are columnar (``bids``, ``repeats``, cumulative instruction prefix
sums), so the engine consumes a whole scheduling quantum with one
``bisect`` over a prefix-sum list and C-speed slice ``extend``s into the
:class:`~repro.perf.ring.EventRing` buffers, instead of resuming a
generator once per event.

Two block-run encodings exist:

* ``OP_TILED`` — a constant-trip worker loop (the common case): one
  iteration's event pattern plus per-iteration instruction totals.  The
  engine replays ``n_iters`` copies arithmetically — compile cost is
  ``O(events per iteration)``, independent of the iteration count, which
  matters because engines are constructed per run.
* ``OP_TABLE`` — an explicit event table with prefix sums, used where the
  per-iteration pattern varies (iteration-dependent trip counts, atomic
  interleavings, critical-section fragments, dynamic-schedule chunks
  sliced via ``iter_off``).

Synchronization stays event-at-a-time: ``OP_SYNC`` carries the *interned*
sync event (one instance per construct, shared with the generator path)
and dispatches through the engine's existing handlers, so barrier/lock
semantics, gseq numbering and observer callbacks are untouched.

Bit-identity contract: consuming a tape produces the exact event sequence,
rng-stream consumption, observer callbacks and
:class:`~repro.exec_engine.engine.EngineResult` of the generator path.
Compilation is conservative: any construct subclass or combination this
module does not understand makes :func:`compile_streams` return ``None``
and the engine falls back to the generator fast path unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: Tape op codes.  Block runs (`OP_TILED`/`OP_TABLE`) are consumed by the
#: engine's bisect loop; the rest dispatch one event through the engine's
#: sync handlers.
OP_TILED = 0   # (0, bids, reps, pre_t, pre_f, m, iter_t, iter_f, n_iters)
OP_TABLE = 1   # (1, bids, reps, pre_t, pre_f, i0, i1)
OP_SYNC = 2    # (2, event)
OP_CHUNK = 3   # (3, event, bids, reps, pre_t, pre_f, iter_off)
OP_SINGLE = 4  # (4, event, run_or_None)  run = (bids, reps, pre_t, pre_f)
OP_BARRIER = 5  # (5, event)  a BarrierWait, inlined by the engine when the
#                ring does not demand per-sync flushes
OP_DONE = 6    # (6,)  end-of-tape sentinel appended to every stream, so the
#                hot loop never compares the op index against a length

#: The shared end-of-tape sentinel instance (``streams[tid][-1]`` always).
DONE_OP = (OP_DONE,)


class _Uncompilable(Exception):
    """This program contains a construct the tape compiler cannot encode."""


def _pattern_key(work) -> Optional[Tuple]:
    """A structural identity for a constant-trip pattern, or ``None``.

    Two :class:`LoopWork` instances over the same header and body blocks
    with equal constant trip counts compile to identical pattern columns —
    workload builders routinely construct hundreds of such clones (one per
    phase repetition), and compilation happens per engine construction, so
    recognizing them matters.  Keys hold ``id()``s of blocks that are alive
    for the duration of the memo (one :func:`compile_streams` call), never
    longer.
    """
    body_key = []
    for block, trip in work.body:
        if callable(trip):
            return None
        body_key.append((id(block), trip))
    return (id(work.header), tuple(body_key))


def _pattern_cols(work, memo: Optional[dict] = None) -> Optional[Tuple]:
    """One iteration's event pattern as columns, or ``None`` (callable
    trips).

    Returns ``(bids, reps, pre_t, pre_f, m, iter_t, iter_f)`` where
    ``pre_t[i]``/``pre_f[i]`` are total/filtered instructions of pattern
    events ``[0, i)`` (length ``m + 1``) and ``iter_t``/``iter_f`` the full
    iteration's totals.  Cached on the :class:`LoopWork` — the pattern is
    range-independent — and, when ``memo`` is given, shared across
    structurally identical works within one compilation.
    """
    cached = getattr(work, "_sched_pattern", None)
    if cached is not None:
        return cached or None
    key = _pattern_key(work) if memo is not None else None
    if key is not None:
        hit = memo.get(key)
        if hit is not None:
            object.__setattr__(work, "_sched_pattern", hit)
            return hit
    if not work._plan_built:
        work._build_plan()
    plan = work._iter_plan
    if plan is None:
        # Iteration-dependent trip counts: no constant pattern.  Cache the
        # negative result too (an empty tuple, distinguished from None).
        object.__setattr__(work, "_sched_pattern", ())
        return None
    bids: List[int] = []
    reps: List[int] = []
    pre_t: List[int] = [0]
    pre_f: List[int] = [0]
    t = 0
    f = 0
    for ev in plan:
        bids.append(ev.bid)
        reps.append(ev.repeat)
        t += ev.n_total
        if not ev.is_library:
            f += ev.n_total
        pre_t.append(t)
        pre_f.append(f)
    cols = (bids, reps, pre_t, pre_f, len(bids), t, f)
    object.__setattr__(work, "_sched_pattern", cols)
    if key is not None:
        memo[key] = cols
    return cols


class _Rows:
    """An event-table builder tracking prefix sums and iteration offsets."""

    __slots__ = ("bids", "reps", "pre_t", "pre_f", "iter_off")

    def __init__(self) -> None:
        self.bids: List[int] = []
        self.reps: List[int] = []
        self.pre_t: List[int] = [0]
        self.pre_f: List[int] = [0]
        self.iter_off: List[int] = []

    def append(self, block, rep: int) -> None:
        n = block.n_instr * rep
        self.bids.append(block.bid)
        self.reps.append(rep)
        self.pre_t.append(self.pre_t[-1] + n)
        self.pre_f.append(
            self.pre_f[-1] + (0 if block.image.is_library else n)
        )

    def expand(self, block, n: int, batch_limit: int) -> None:
        """The exact expansion :meth:`LoopWork.emit` performs."""
        while n > batch_limit:
            self.append(block, batch_limit)
            n -= batch_limit
        if n > 0:
            self.append(block, n)

    def __len__(self) -> int:
        return len(self.bids)

    def table_op(self) -> Optional[Tuple]:
        if not self.bids:
            return None
        return (
            OP_TABLE, self.bids, self.reps, self.pre_t, self.pre_f,
            0, len(self.bids),
        )


def _emit_iteration(rows: _Rows, work, i: int, batch_limit: int) -> None:
    """Append iteration ``i``'s events — header then expanded body blocks —
    matching :meth:`LoopWork.emit` event for event."""
    rows.append(work.header, 1)
    for block, trip in work.body:
        rows.expand(block, trip(i) if callable(trip) else trip, batch_limit)


def _work_ops(
    work, lo: int, hi: int, batch_limit: int,
    memo: Optional[dict] = None,
) -> List[Tuple]:
    """Ops for plain iterations ``[lo, hi)`` of ``work`` (no crit/atomic)."""
    if hi <= lo:
        return []
    pat = _pattern_cols(work, memo)
    if pat is not None:
        bids, reps, pre_t, pre_f, m, iter_t, iter_f = pat
        if m == 0:
            return []
        return [(OP_TILED, bids, reps, pre_t, pre_f, m, iter_t, iter_f,
                 hi - lo)]
    rows = _Rows()
    for i in range(lo, hi):
        _emit_iteration(rows, work, i, batch_limit)
    op = rows.table_op()
    return [op] if op is not None else []


def _crit_row(spec) -> Tuple:
    """A one-event table op for a critical-section body block."""
    rows = _Rows()
    rows.append(spec.block, 1)
    return rows.table_op()


# Lazily-bound references into runtime.constructs (imported at first use;
# a module-level import would be circular).  _compile_parallel_for runs
# hundreds of times per compilation, so the per-call import machinery —
# cheap but not free — is hoisted out of it.
_SCHEDULE_STATIC = None
_static_chunk = None


def _compile_parallel_for(pf, nthreads: int, batch_limit: int, memo=None):
    global _SCHEDULE_STATIC, _static_chunk
    if _static_chunk is None:
        from ..runtime.constructs import SCHEDULE_STATIC, static_chunk
        _SCHEDULE_STATIC = SCHEDULE_STATIC
        _static_chunk = static_chunk

    work = pf.work
    crit = pf.critical
    atom = pf.atomic
    tail: List[Tuple] = []
    if pf.reduction:
        tail.append((OP_SYNC, pf._reduce_event()))
    if not pf.nowait:
        tail.append((OP_BARRIER, pf._barrier_event()))

    if pf.schedule == _SCHEDULE_STATIC:
        # Constant-pattern chunks with no lock traffic compile to the same
        # op list whenever their chunk *sizes* match (the tiled op rolls
        # iterations arithmetically, so only ``hi - lo`` matters) — build
        # each distinct size once and share the list across threads.
        # Compilation happens per engine construction, so this is hot.
        shared = (
            {}
            if crit is None and atom is None
            and _pattern_cols(work, memo) is not None
            else None
        )
        # Chunk boundaries depend only on (total_iters, nthreads): share
        # them across the hundreds of same-shape constructs one compile
        # sees (phase repetitions all split the same iteration space).
        chunks = None
        if memo is not None:
            chunk_key = ("chunks", pf.total_iters, nthreads)
            chunks = memo.get(chunk_key)
        if chunks is None:
            chunks = [
                _static_chunk(pf.total_iters, nthreads, t)
                for t in range(nthreads)
            ]
            if memo is not None:
                memo[chunk_key] = chunks
        per_tid = []
        for tid in range(nthreads):
            start, stop = chunks[tid]
            if shared is not None:
                ops = shared.get(stop - start)
                if ops is None:
                    ops = (
                        _work_ops(work, start, stop, batch_limit, memo)
                        + tail
                    )
                    shared[stop - start] = ops
                per_tid.append(ops)
                continue
            if crit is None and atom is None:
                ops = _work_ops(work, start, stop, batch_limit, memo)
            elif crit is None:
                # Atomic updates are plain block events: fold them into
                # the iteration table in _iteration_events order.
                rows = _Rows()
                for i in range(start, stop):
                    _emit_iteration(rows, work, i, batch_limit)
                    if i % atom.every == 0:
                        rows.append(atom.block, 1)
                op = rows.table_op()
                ops = [op] if op is not None else []
            else:
                # Critical sections interleave lock syncs mid-stream:
                # flush the pending table at each lock boundary.
                acq = pf._lock_acq_event()
                rel = pf._lock_rel_event()
                crit_op = _crit_row(crit)
                ops = []
                rows = _Rows()
                for i in range(start, stop):
                    _emit_iteration(rows, work, i, batch_limit)
                    if i % crit.every == 0:
                        op = rows.table_op()
                        if op is not None:
                            ops.append(op)
                        rows = _Rows()
                        ops.append((OP_SYNC, acq))
                        ops.append(crit_op)
                        ops.append((OP_SYNC, rel))
                    if atom is not None and i % atom.every == 0:
                        rows.append(atom.block, 1)
                op = rows.table_op()
                if op is not None:
                    ops.append(op)
            per_tid.append(ops + tail)
        return per_tid

    # Dynamic schedule: one shared table over the whole iteration space,
    # sliced per granted chunk via iter_off.  Lock syncs cannot be placed
    # inside a chunk-granted run, so dynamic + critical falls back.
    if crit is not None:
        raise _Uncompilable("dynamic schedule with critical section")
    rows = _Rows()
    for i in range(pf.total_iters):
        rows.iter_off.append(len(rows))
        _emit_iteration(rows, work, i, batch_limit)
        if atom is not None and i % atom.every == 0:
            rows.append(atom.block, 1)
    rows.iter_off.append(len(rows))
    op = (OP_CHUNK, pf._chunk_event(), rows.bids, rows.reps,
          rows.pre_t, rows.pre_f, rows.iter_off)
    ops = [op] + tail
    return [ops] * nthreads


def _compile_serial(c, nthreads: int, batch_limit: int, memo=None):
    barrier = (OP_BARRIER, c._barrier_event())
    master_ops = _work_ops(c.work, 0, c.iters, batch_limit, memo) + [barrier]
    waiter_ops = [barrier]
    return [master_ops] + [waiter_ops] * (nthreads - 1)


def _compile_barrier(c, nthreads: int):
    ops = [(OP_BARRIER, c._barrier_event())]
    return [ops] * nthreads


def _compile_single(c, nthreads: int, batch_limit: int, memo=None):
    rows = _Rows()
    for i in range(c.iters):
        _emit_iteration(rows, c.work, i, batch_limit)
    run = (rows.bids, rows.reps, rows.pre_t, rows.pre_f) if rows.bids else None
    ops = [(OP_SINGLE, c._single_event(), run),
           (OP_BARRIER, c._barrier_event())]
    return [ops] * nthreads


def _compile_master(c, nthreads: int, batch_limit: int, memo=None):
    master_ops = _work_ops(c.work, 0, c.iters, batch_limit, memo)
    return [master_ops if tid == 0 else [] for tid in range(nthreads)]


def compile_streams(thread_program, nthreads: int) -> Optional[List[List]]:
    """Compile every construct for every thread into per-thread tapes.

    Returns ``streams[tid] -> [op, ...]``, or ``None`` when any construct
    is not compilable (unknown subclass, dynamic schedule with a critical
    section) — the caller falls back to the generator path.  Per-construct
    results are cached on the construct instance keyed by ``nthreads``, so
    repeated engine construction over the same workload pays compilation
    once.
    """
    from ..runtime.constructs import (
        BATCH_LIMIT,
        Barrier,
        Master,
        ParallelFor,
        Serial,
        Single,
    )

    # Pattern memo shared across this compilation: workloads that repeat a
    # phase build hundreds of structurally identical LoopWork clones, and
    # all of them compile to the same columns (see :func:`_pattern_key`).
    memo: dict = {}
    compilers = {
        ParallelFor: lambda c: _compile_parallel_for(
            c, nthreads, BATCH_LIMIT, memo
        ),
        Serial: lambda c: _compile_serial(c, nthreads, BATCH_LIMIT, memo),
        Barrier: lambda c: _compile_barrier(c, nthreads),
        Single: lambda c: _compile_single(c, nthreads, BATCH_LIMIT, memo),
        Master: lambda c: _compile_master(c, nthreads, BATCH_LIMIT, memo),
    }
    streams: List[List] = [[] for _ in range(nthreads)]
    for construct in thread_program.constructs:
        compiler = compilers.get(type(construct))
        if compiler is None:
            # Exact type match only: a subclass may override run() with
            # semantics the tape cannot represent.
            return None
        cache = getattr(construct, "_sched_tape_cache", None)
        if cache is None:
            cache = construct._sched_tape_cache = {}
        per_tid = cache.get(nthreads)
        if per_tid is None:
            try:
                per_tid = compiler(construct)
            except _Uncompilable:
                return None
            cache[nthreads] = per_tid
        for tid in range(nthreads):
            streams[tid].extend(per_tid[tid])
    for tape in streams:
        tape.append(DONE_OP)
    return streams
