"""Functional execution of multi-threaded programs.

The :class:`~repro.exec_engine.engine.ExecutionEngine` plays the role Intel
Pin plays in the paper: it runs the program functionally, interleaving
threads under a seeded host scheduler, resolving synchronization, and handing
every dynamic basic-block event to observers (instruction counters, BBV
profilers, the pinball recorder).
"""

from .events import (
    BlockExec,
    BarrierWait,
    LockAcquire,
    LockRelease,
    ChunkRequest,
    SingleRequest,
)
from .engine import ExecutionEngine, EngineResult, ThreadState
from .flowcontrol import FlowControl
from .observers import Observer, InstructionCounter, TraceCollector

__all__ = [
    "BlockExec",
    "BarrierWait",
    "LockAcquire",
    "LockRelease",
    "ChunkRequest",
    "SingleRequest",
    "ExecutionEngine",
    "EngineResult",
    "ThreadState",
    "FlowControl",
    "Observer",
    "InstructionCounter",
    "TraceCollector",
]
