"""Observer interface for execution drivers.

Both the functional engine and the timing simulator publish the same two
callbacks, so profiling tools (BBV collection, marker counting, recording)
are driver-agnostic — like pintools that work under both Pin and PinPlay.

Drivers with a batched hot path (the functional engine, the constrained
replayer) deliver block events through :meth:`Observer.on_block_batch` as
parallel numpy columns (see :class:`repro.perf.ring.EventBatch`).  The base
class's implementation replays a batch through :meth:`Observer.on_block`
one event at a time, so observers written against the per-event interface
— including third-party ones — keep working unchanged; observers on hot
paths override ``on_block_batch`` with vectorized reductions.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..isa.blocks import BasicBlock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.ring import EventBatch


class Observer:
    """Base observer; subclasses override what they need."""

    #: Whether a batching driver must flush buffered block events before
    #: delivering ``on_sync``.  True (the safe default) preserves the exact
    #: per-event block/sync interleaving for observers that correlate the
    #: two streams (vector clocks, DCFG edges).  Observers whose final
    #: state does not depend on that interleaving — pure counters, pure
    #: logs — set this False so sync-dense programs can amortize batches
    #: across syncs.
    needs_flush_before_sync = True

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        """``block`` executed ``repeat`` times on ``tid``; ``start_index`` is
        the thread's prior execution count of this block."""

    def on_block_batch(self, batch: "EventBatch") -> None:
        """A batch of block events in execution order.

        The default replays the batch through :meth:`on_block` per event —
        the compatibility shim that keeps per-event observers (and the lint
        concurrency passes) semantics-identical under batching drivers.
        """
        blocks = batch.blocks
        on_block = self.on_block
        tids = batch.tid.tolist()
        bids = batch.bid.tolist()
        repeats = batch.repeat.tolist()
        starts = batch.start_index.tolist()
        for i in range(batch.size):
            on_block(tids[i], blocks[bids[i]], repeats[i], starts[i])

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        """A synchronization action with global sequence number ``gseq``."""

    def on_finish(self) -> None:
        """Execution completed."""


class InstructionCounter(Observer):
    """Counts instructions, split by image and by thread."""

    needs_flush_before_sync = False  # pure accumulator; order-independent

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        self.total = 0
        self.filtered = 0  # application (non-library) instructions
        self.per_thread_total = [0] * nthreads
        self.per_thread_filtered = [0] * nthreads
        self.per_block: Counter = Counter()

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        n = block.n_instr * repeat
        self.total += n
        self.per_thread_total[tid] += n
        self.per_block[block.bid] += repeat
        if not block.image.is_library:
            self.filtered += n
            self.per_thread_filtered[tid] += n

    def on_block_batch(self, batch: "EventBatch") -> None:
        n = batch.instructions
        self.total += int(n.sum())
        app = ~batch.is_library
        self.filtered += int(n[app].sum())
        by_thread = np.bincount(batch.tid, weights=n, minlength=self.nthreads)
        by_thread_app = np.bincount(
            batch.tid[app], weights=n[app], minlength=self.nthreads
        )
        for t in range(self.nthreads):
            self.per_thread_total[t] += int(by_thread[t])
            self.per_thread_filtered[t] += int(by_thread_app[t])
        by_bid = np.bincount(batch.bid, weights=batch.repeat)
        for b in np.flatnonzero(by_bid):
            self.per_block[int(b)] += int(by_bid[b])

    @property
    def library_instructions(self) -> int:
        return self.total - self.filtered


class SyncEventLog(Observer):
    """Records the synchronization event stream, split per thread.

    The lint concurrency passes consume this: per-thread barrier sequences
    (divergence detection) and the global ``gseq`` order (integrity check).
    Works under both the functional engine and constrained replay, since
    both publish :meth:`Observer.on_sync`.
    """

    # Records only the sync stream (gseq values come from the driver), so
    # block-batch flush timing cannot affect its final state.
    needs_flush_before_sync = False

    def on_block_batch(self, batch: "EventBatch") -> None:
        """No-op: block events carry nothing this log records.

        (Without this override the base-class shim would replay every
        batch through the no-op ``on_block`` one event at a time.)
        """

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        #: Per-thread ``(kind, obj_id, gseq)`` sequences, in observed order.
        self.per_thread: List[List[Tuple[str, int, int]]] = [
            [] for _ in range(nthreads)
        ]
        #: Every gseq value in observation order.
        self.gseq_order: List[int] = []

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        self.per_thread[tid].append((kind, obj_id, gseq))
        self.gseq_order.append(gseq)

    def barrier_sequence(self, tid: int, kind: str = "barrier") -> List[int]:
        """Barrier object ids thread ``tid`` arrived at, in order."""
        return [
            obj_id for (k, obj_id, _g) in self.per_thread[tid] if k == kind
        ]


class TraceCollector(Observer):
    """Collects the raw per-thread event stream (tests and DCFG building).

    ``limit`` bounds the memory an accidental unbounded collection can
    take.  Past the cap the collector stops recording and *flags* the
    truncation instead of raising: :attr:`truncated` flips to True and
    :attr:`dropped_blocks` / :attr:`dropped_syncs` count what was lost, so
    downstream consumers (and lint rule PERF001) can tell a complete trace
    from a clipped one — a fingerprint built from a silently clipped trace
    would misrepresent the run.
    """

    def __init__(self, limit: Optional[int] = 5_000_000) -> None:
        # The block and sync streams are stored separately, so interleaving
        # only matters when a cap can clip them mid-run: truncation must
        # stop the sync stream at the same interleaved point the legacy
        # path would, hence strict ordering with a finite limit.
        self.needs_flush_before_sync = limit is not None
        # The block trace is stored as ordered parts — lists of
        # ``(tid, bid, repeat)`` tuples from per-event delivery, and raw
        # column triples from batch delivery (kept as numpy arrays: far
        # cheaper to store and only materialized when someone reads
        # :attr:`blocks`).
        self._parts: List = []
        self._tail: List[Tuple[int, int, int]] = []
        self._n_blocks = 0
        self._blocks_cache: Optional[List[Tuple[int, int, int]]] = None
        self._blocks_cache_n = -1
        self.syncs: List[Tuple[int, str, int, object, int]] = []
        self.limit = limit
        #: True once any event was dropped because the cap was reached.
        self.truncated = False
        self.dropped_blocks = 0
        self.dropped_syncs = 0

    @property
    def blocks(self) -> List[Tuple[int, int, int]]:
        """The recorded ``(tid, bid, repeat)`` stream, in observed order."""
        if self._blocks_cache_n != self._n_blocks:
            out: List[Tuple[int, int, int]] = []
            for part in self._parts:
                if isinstance(part, list):
                    out.extend(part)
                else:
                    tids, bids, repeats = part
                    out.extend(
                        zip(tids.tolist(), bids.tolist(), repeats.tolist())
                    )
            out.extend(self._tail)
            self._blocks_cache = out
            self._blocks_cache_n = self._n_blocks
        return self._blocks_cache

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        if self.limit is not None and self._n_blocks >= self.limit:
            self.truncated = True
            self.dropped_blocks += 1
            return
        self._tail.append((tid, block.bid, repeat))
        self._n_blocks += 1

    def on_block_batch(self, batch: "EventBatch") -> None:
        take = batch.size
        if self.limit is not None:
            room = self.limit - self._n_blocks
            if room < take:
                take = max(room, 0)
                self.truncated = True
                self.dropped_blocks += batch.size - take
        if take:
            if self._tail:
                self._parts.append(self._tail)
                self._tail = []
            self._parts.append(
                (batch.tid[:take], batch.bid[:take], batch.repeat[:take])
            )
            self._n_blocks += take

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        if self.truncated:
            # A clipped block stream makes the sync stream past the cut
            # meaningless for replay alignment; stop recording both.
            self.dropped_syncs += 1
            return
        self.syncs.append((tid, kind, obj_id, response, gseq))
