"""Observer interface for execution drivers.

Both the functional engine and the timing simulator publish the same two
callbacks, so profiling tools (BBV collection, marker counting, recording)
are driver-agnostic — like pintools that work under both Pin and PinPlay.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from ..isa.blocks import BasicBlock


class Observer:
    """Base observer; subclasses override what they need."""

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        """``block`` executed ``repeat`` times on ``tid``; ``start_index`` is
        the thread's prior execution count of this block."""

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        """A synchronization action with global sequence number ``gseq``."""

    def on_finish(self) -> None:
        """Execution completed."""


class InstructionCounter(Observer):
    """Counts instructions, split by image and by thread."""

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        self.total = 0
        self.filtered = 0  # application (non-library) instructions
        self.per_thread_total = [0] * nthreads
        self.per_thread_filtered = [0] * nthreads
        self.per_block: Counter = Counter()

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        n = block.n_instr * repeat
        self.total += n
        self.per_thread_total[tid] += n
        self.per_block[block.bid] += repeat
        if not block.image.is_library:
            self.filtered += n
            self.per_thread_filtered[tid] += n

    @property
    def library_instructions(self) -> int:
        return self.total - self.filtered


class SyncEventLog(Observer):
    """Records the synchronization event stream, split per thread.

    The lint concurrency passes consume this: per-thread barrier sequences
    (divergence detection) and the global ``gseq`` order (integrity check).
    Works under both the functional engine and constrained replay, since
    both publish :meth:`Observer.on_sync`.
    """

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        #: Per-thread ``(kind, obj_id, gseq)`` sequences, in observed order.
        self.per_thread: List[List[Tuple[str, int, int]]] = [
            [] for _ in range(nthreads)
        ]
        #: Every gseq value in observation order.
        self.gseq_order: List[int] = []

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        self.per_thread[tid].append((kind, obj_id, gseq))
        self.gseq_order.append(gseq)

    def barrier_sequence(self, tid: int, kind: str = "barrier") -> List[int]:
        """Barrier object ids thread ``tid`` arrived at, in order."""
        return [
            obj_id for (k, obj_id, _g) in self.per_thread[tid] if k == kind
        ]


class TraceCollector(Observer):
    """Collects the raw per-thread event stream (tests and DCFG building).

    ``limit`` guards against accidentally collecting an unbounded trace.
    """

    def __init__(self, limit: Optional[int] = 5_000_000) -> None:
        self.blocks: List[Tuple[int, int, int]] = []  # (tid, bid, repeat)
        self.syncs: List[Tuple[int, str, int, object, int]] = []
        self.limit = limit

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        self.blocks.append((tid, block.bid, repeat))
        if self.limit is not None and len(self.blocks) > self.limit:
            raise MemoryError("TraceCollector limit exceeded")

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        self.syncs.append((tid, kind, obj_id, response, gseq))
