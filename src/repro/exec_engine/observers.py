"""Observer interface for execution drivers.

Both the functional engine and the timing simulator publish the same two
callbacks, so profiling tools (BBV collection, marker counting, recording)
are driver-agnostic — like pintools that work under both Pin and PinPlay.

Drivers with a batched hot path (the functional engine, the constrained
replayer) deliver block events through :meth:`Observer.on_block_batch` as
parallel numpy columns (see :class:`repro.perf.ring.EventBatch`).  The base
class's implementation replays a batch through :meth:`Observer.on_block`
one event at a time, so observers written against the per-event interface
— including third-party ones — keep working unchanged; observers on hot
paths override ``on_block_batch`` with vectorized reductions.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..isa.blocks import BasicBlock
from ..perf.ring import FLAG_LIBRARY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.ring import EventBatch


class Observer:
    """Base observer; subclasses override what they need."""

    #: Whether a batching driver must flush buffered block events before
    #: delivering ``on_sync``.  True (the safe default) preserves the exact
    #: per-event block/sync interleaving for observers that correlate the
    #: two streams (vector clocks, DCFG edges).  Observers whose final
    #: state does not depend on that interleaving — pure counters, pure
    #: logs — set this False so sync-dense programs can amortize batches
    #: across syncs.
    needs_flush_before_sync = True

    #: Whether this observer reads ``EventBatch.start_index``.  True (the
    #: safe default) because the base ``on_block_batch`` shim replays
    #: batches through ``on_block(tid, block, repeat, start_index)``.
    #: Observers that override ``on_block_batch`` without touching the
    #: column set this False; when every attached observer does, the ring
    #: skips the argsort-based start-index reconstruction at flush time
    #: and advances its count table with a cheap scatter-add instead.
    needs_start_index = True

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        """``block`` executed ``repeat`` times on ``tid``; ``start_index`` is
        the thread's prior execution count of this block."""

    def on_block_batch(self, batch: "EventBatch") -> None:
        """A batch of block events in execution order.

        The default replays the batch through :meth:`on_block` per event —
        the compatibility shim that keeps per-event observers (and the lint
        concurrency passes) semantics-identical under batching drivers.
        """
        blocks = batch.blocks
        on_block = self.on_block
        tids = batch.tid.tolist()
        bids = batch.bid.tolist()
        repeats = batch.repeat.tolist()
        starts = batch.start_index.tolist()
        for i in range(batch.size):
            on_block(tids[i], blocks[bids[i]], repeats[i], starts[i])

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        """A synchronization action with global sequence number ``gseq``."""

    def on_sync_batch(
        self,
        tids: List[int],
        kinds: List[str],
        obj_ids: List[int],
        responses: list,
        gseqs: List[int],
    ) -> None:
        """A run of buffered synchronization actions, in gseq order.

        Drivers may buffer sync events (only when every attached observer
        cleared ``needs_flush_before_sync``, i.e. declared its final state
        independent of the block/sync interleaving) and deliver them here
        in bulk.  The default replays through :meth:`on_sync` per event, so
        per-event observers see identical calls.  The columns are parallel
        sequences owned by the driver and only valid during the call —
        copy, don't keep references.
        """
        on_sync = self.on_sync
        for i in range(len(tids)):
            on_sync(tids[i], kinds[i], obj_ids[i], responses[i], gseqs[i])

    def on_sync_rows(self, rows) -> None:
        """A run of buffered sync actions as ``(tid, kind, obj_id,
        response, gseq)`` row tuples, in gseq order.

        The row-oriented twin of :meth:`on_sync_batch`: drivers buffering
        syncs as rows deliver through this method to observers that
        override it (skipping the row→column transpose) and through
        :meth:`on_sync_batch` otherwise.  The ``rows`` list is owned by the
        driver and reused after the call — copy the rows (they are
        immutable tuples), never keep the list itself.
        """
        on_sync = self.on_sync
        for tid, kind, obj_id, response, gseq in rows:
            on_sync(tid, kind, obj_id, response, gseq)

    def on_finish(self) -> None:
        """Execution completed."""


class InstructionCounter(Observer):
    """Counts instructions, split by image and by thread.

    Batch deliveries are accepted as column references and reduced only on
    the first counter read: the ring allocates fresh column arrays per
    flush (never reused), so keeping the references is safe, and a run
    whose counters nobody inspects pays five list appends per flush.
    """

    needs_flush_before_sync = False  # pure accumulator; order-independent
    needs_start_index = False  # batch reduction never reads start_index

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        self._total = 0
        self._filtered = 0  # application (non-library) instructions
        self._per_thread_total = [0] * nthreads
        self._per_thread_filtered = [0] * nthreads
        self._per_block: Counter = Counter()
        self._pending: List[tuple] = []

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        if self._pending:
            self._drain()
        n = block.n_instr * repeat
        self._total += n
        self._per_thread_total[tid] += n
        self._per_block[block.bid] += repeat
        if not block.image.is_library:
            self._filtered += n
            self._per_thread_filtered[tid] += n

    def on_block_batch(self, batch: "EventBatch") -> None:
        self._pending.append(
            (batch.tid, batch.bid, batch.repeat, batch.n_instr, batch.flags)
        )

    def _drain(self) -> None:
        nthreads = self.nthreads
        for tid, bid, repeat, n_instr, flags in self._pending:
            n = n_instr * repeat
            self._total += int(n.sum())
            app = (flags & FLAG_LIBRARY) == 0
            self._filtered += int(n[app].sum())
            by_thread = np.bincount(tid, weights=n, minlength=nthreads)
            by_thread_app = np.bincount(
                tid[app], weights=n[app], minlength=nthreads
            )
            for t in range(nthreads):
                self._per_thread_total[t] += int(by_thread[t])
                self._per_thread_filtered[t] += int(by_thread_app[t])
            by_bid = np.bincount(bid, weights=repeat)
            for b in np.flatnonzero(by_bid):
                self._per_block[int(b)] += int(by_bid[b])
        self._pending.clear()

    @property
    def total(self) -> int:
        if self._pending:
            self._drain()
        return self._total

    @property
    def filtered(self) -> int:
        """Application (non-library) instructions."""
        if self._pending:
            self._drain()
        return self._filtered

    @property
    def per_thread_total(self) -> List[int]:
        if self._pending:
            self._drain()
        return self._per_thread_total

    @property
    def per_thread_filtered(self) -> List[int]:
        if self._pending:
            self._drain()
        return self._per_thread_filtered

    @property
    def per_block(self) -> Counter:
        if self._pending:
            self._drain()
        return self._per_block

    @property
    def library_instructions(self) -> int:
        return self.total - self.filtered


class SyncEventLog(Observer):
    """Records the synchronization event stream, split per thread.

    The lint concurrency passes consume this: per-thread barrier sequences
    (divergence detection) and the global ``gseq`` order (integrity check).
    Works under both the functional engine and constrained replay, since
    both publish :meth:`Observer.on_sync`.
    """

    # Records only the sync stream (gseq values come from the driver), so
    # block-batch flush timing cannot affect its final state.
    needs_flush_before_sync = False
    needs_start_index = False  # block batches are ignored entirely

    def on_block_batch(self, batch: "EventBatch") -> None:
        """No-op: block events carry nothing this log records.

        (Without this override the base-class shim would replay every
        batch through the no-op ``on_block`` one event at a time.)
        """

    def __init__(self, nthreads: int) -> None:
        self.nthreads = nthreads
        self._per_thread: List[List[Tuple[str, int, int]]] = [
            [] for _ in range(nthreads)
        ]
        self._gseq_order: List[int] = []
        # Row batches accepted but not yet split per thread.  Splitting is
        # deferred to the first read: a run that never inspects the log
        # (perf harness, replay-only paths) pays one tuple copy per flush.
        self._pending: List[tuple] = []

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        if self._pending:
            self._drain()
        self._per_thread[tid].append((kind, obj_id, gseq))
        self._gseq_order.append(gseq)

    def on_sync_rows(self, rows) -> None:
        self._pending.append(tuple(rows))

    def on_sync_batch(self, tids, kinds, obj_ids, responses, gseqs) -> None:
        self._pending.append(tuple(zip(tids, kinds, obj_ids, responses, gseqs)))

    def _drain(self) -> None:
        per_thread = self._per_thread
        order = self._gseq_order
        for rows in self._pending:
            for tid, kind, obj_id, _response, gseq in rows:
                per_thread[tid].append((kind, obj_id, gseq))
                order.append(gseq)
        self._pending.clear()

    @property
    def per_thread(self) -> List[List[Tuple[str, int, int]]]:
        """Per-thread ``(kind, obj_id, gseq)`` sequences, in observed order."""
        if self._pending:
            self._drain()
        return self._per_thread

    @property
    def gseq_order(self) -> List[int]:
        """Every gseq value in observation order."""
        if self._pending:
            self._drain()
        return self._gseq_order

    def barrier_sequence(self, tid: int, kind: str = "barrier") -> List[int]:
        """Barrier object ids thread ``tid`` arrived at, in order."""
        return [
            obj_id for (k, obj_id, _g) in self.per_thread[tid] if k == kind
        ]


class TraceCollector(Observer):
    """Collects the raw per-thread event stream (tests and DCFG building).

    ``limit`` bounds the memory an accidental unbounded collection can
    take.  Past the cap the collector stops recording and *flags* the
    truncation instead of raising: :attr:`truncated` flips to True and
    :attr:`dropped_blocks` / :attr:`dropped_syncs` count what was lost, so
    downstream consumers (and lint rule PERF001) can tell a complete trace
    from a clipped one — a fingerprint built from a silently clipped trace
    would misrepresent the run.
    """

    needs_start_index = False  # stores only (tid, bid, repeat) columns

    def __init__(self, limit: Optional[int] = 5_000_000) -> None:
        # The block and sync streams are stored separately, so interleaving
        # only matters when a cap can clip them mid-run: truncation must
        # stop the sync stream at the same interleaved point the legacy
        # path would, hence strict ordering with a finite limit.
        self.needs_flush_before_sync = limit is not None
        # The block trace is stored as ordered parts — lists of
        # ``(tid, bid, repeat)`` tuples from per-event delivery, and raw
        # column triples from batch delivery (kept as numpy arrays: far
        # cheaper to store and only materialized when someone reads
        # :attr:`blocks`).
        self._parts: List = []
        self._tail: List[Tuple[int, int, int]] = []
        self._n_blocks = 0
        self._blocks_cache: Optional[List[Tuple[int, int, int]]] = None
        self._blocks_cache_n = -1
        # The sync trace mirrors the block trace's parts/tail layout:
        # per-event appends land in the tail, batched row deliveries are
        # kept as whole tuples and only concatenated when :attr:`syncs`
        # is read.
        self._sync_parts: List[tuple] = []
        self._sync_tail: List[Tuple[int, str, int, object, int]] = []
        self._n_syncs = 0
        self._syncs_cache: Optional[List] = None
        self._syncs_cache_n = -1
        self.limit = limit
        #: True once any event was dropped because the cap was reached.
        self.truncated = False
        self.dropped_blocks = 0
        self.dropped_syncs = 0

    @property
    def blocks(self) -> List[Tuple[int, int, int]]:
        """The recorded ``(tid, bid, repeat)`` stream, in observed order."""
        if self._blocks_cache_n != self._n_blocks:
            out: List[Tuple[int, int, int]] = []
            for part in self._parts:
                if isinstance(part, list):
                    out.extend(part)
                else:
                    tids, bids, repeats = part
                    out.extend(
                        zip(tids.tolist(), bids.tolist(), repeats.tolist())
                    )
            out.extend(self._tail)
            self._blocks_cache = out
            self._blocks_cache_n = self._n_blocks
        return self._blocks_cache

    def on_block(
        self, tid: int, block: BasicBlock, repeat: int, start_index: int
    ) -> None:
        if self.limit is not None and self._n_blocks >= self.limit:
            self.truncated = True
            self.dropped_blocks += 1
            return
        self._tail.append((tid, block.bid, repeat))
        self._n_blocks += 1

    def on_block_batch(self, batch: "EventBatch") -> None:
        take = batch.size
        if self.limit is not None:
            room = self.limit - self._n_blocks
            if room < take:
                take = max(room, 0)
                self.truncated = True
                self.dropped_blocks += batch.size - take
        if take:
            if self._tail:
                self._parts.append(self._tail)
                self._tail = []
            self._parts.append(
                (batch.tid[:take], batch.bid[:take], batch.repeat[:take])
            )
            self._n_blocks += take

    @property
    def syncs(self) -> List[Tuple[int, str, int, object, int]]:
        """The recorded sync stream, in observed order."""
        if self._syncs_cache_n != self._n_syncs:
            out: List[Tuple[int, str, int, object, int]] = []
            for part in self._sync_parts:
                out.extend(part)
            out.extend(self._sync_tail)
            self._syncs_cache = out
            self._syncs_cache_n = self._n_syncs
        return self._syncs_cache

    def on_sync(
        self, tid: int, kind: str, obj_id: int, response, gseq: int
    ) -> None:
        if self.truncated:
            # A clipped block stream makes the sync stream past the cut
            # meaningless for replay alignment; stop recording both.
            self.dropped_syncs += 1
            return
        self._sync_tail.append((tid, kind, obj_id, response, gseq))
        self._n_syncs += 1

    def on_sync_rows(self, rows) -> None:
        # Batched sync delivery only happens when this collector is
        # unbounded (a finite limit sets needs_flush_before_sync, which
        # disables sync buffering), so the truncation guard is for safety.
        if self.truncated:
            self.dropped_syncs += len(rows)
            return
        if self._sync_tail:
            self._sync_parts.append(tuple(self._sync_tail))
            self._sync_tail = []
        self._sync_parts.append(tuple(rows))
        self._n_syncs += len(rows)

    def on_sync_batch(self, tids, kinds, obj_ids, responses, gseqs) -> None:
        self.on_sync_rows(tuple(zip(tids, kinds, obj_ids, responses, gseqs)))
