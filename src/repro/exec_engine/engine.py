"""The functional execution engine (Pin's role in the paper).

Runs a :class:`~repro.runtime.thread.ThreadProgram` against its static
:class:`~repro.isa.image.Program` under a seeded host scheduler.  The seed
models run-to-run host nondeterminism: different seeds interleave threads
differently, which changes spin-loop instruction counts (ACTIVE wait policy)
and dynamic-schedule chunk assignments — while the application's *work*
(worker-loop trip counts, hence ``(PC, count)`` markers) stays invariant.

Synchronization library code (:class:`~repro.runtime.omp.OmpRuntime` blocks)
is executed here on behalf of threads: barrier entry/exit, spin iterations
while blocked (ACTIVE), futex paths (PASSIVE), lock handoffs, chunk fetches.

Two observer-dispatch paths exist.  The default *batched* path buffers
block events in a :class:`~repro.perf.ring.EventRing` and flushes them to
observers as numpy column batches (flushed before every sync event, so
block/sync ordering is exact); the *legacy* path dispatches every event
through ``Observer.on_block`` as the original implementation did.  Both
produce bit-identical :class:`EngineResult` and observer state — the
batched path is just faster.  Select with ``batch_events=`` or the
``REPRO_BATCH_EVENTS`` environment variable.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..config import default_batch_events, default_sched_compile
from ..errors import DeadlockError, ExecutionError
from ..obs.heartbeat import active_heartbeat
from ..obs.tracer import active_metrics
from ..isa.blocks import BasicBlock
from ..isa.image import Program
from ..perf.kernels import VALID_TIERS, get_kernel, select_tier
from ..perf.ring import DEFAULT_CAPACITY, EventRing
from ..policy import WaitPolicy
from .events import (
    BarrierWait,
    BlockExec,
    ChunkRequest,
    LockAcquire,
    LockRelease,
    Reduce,
    SingleRequest,
    SYNC_BARRIER,
    SYNC_BARRIER_REL,
    SYNC_CHUNK,
    SYNC_LOCK_ACQ,
    SYNC_LOCK_REL,
    SYNC_SINGLE,
)
from .flowcontrol import FlowControl
from .observers import Observer
from .schedcore import (
    OP_BARRIER,
    OP_CHUNK,
    OP_DONE,
    OP_SINGLE,
    OP_SYNC,
    OP_TABLE,
    OP_TILED,
    compile_streams,
)

#: Buffered sync events are flushed to observers in runs of at most this
#: many (matches the block ring's default capacity; bounds buffer memory).
SYNC_BUFFER_LIMIT = 8192

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.omp import OmpRuntime
    from ..runtime.thread import ThreadProgram


class ThreadState(Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


class _Thread:
    __slots__ = ("tid", "gen", "state", "response")

    def __init__(self, tid: int, gen) -> None:
        self.tid = tid
        self.gen = gen
        self.state = ThreadState.RUNNABLE
        self.response = None


class _Lock:
    __slots__ = ("owner", "waiters")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.waiters: List[int] = []


@dataclass
class EngineResult:
    """Summary of one functional execution."""

    total_instructions: int
    filtered_instructions: int
    per_thread_total: List[int]
    per_thread_filtered: List[int]
    exec_counts: List[List[int]]
    num_events: int
    wait_policy: WaitPolicy
    seed: int

    @property
    def library_instructions(self) -> int:
        return self.total_instructions - self.filtered_instructions


class ExecutionEngine:
    """Interleaves thread generators and resolves synchronization."""

    def __init__(
        self,
        program: Program,
        thread_program: "ThreadProgram",
        omp: "OmpRuntime",
        nthreads: int,
        *,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        seed: int = 0,
        observers: Sequence[Observer] = (),
        flow_control: Optional[FlowControl] = None,
        quantum_instructions: int = 600,
        max_events: Optional[int] = None,
        batch_events: Optional[bool] = None,
        batch_capacity: int = DEFAULT_CAPACITY,
        sched_compile: Optional[bool] = None,
        kernel_tier: Optional[str] = None,
    ) -> None:
        if nthreads < 1:
            raise ExecutionError(f"need at least one thread, got {nthreads}")
        if kernel_tier is None:
            kernel_tier = select_tier()
        elif kernel_tier not in VALID_TIERS:
            raise ValueError(
                f"kernel_tier must be one of {VALID_TIERS}, "
                f"got {kernel_tier!r}"
            )
        #: Scheduler-kernel tier (see :mod:`repro.perf.kernels`):
        #: ``reference`` keeps every configuration test as a runtime
        #: branch; ``compiled``/``auto`` fold this run's configuration out
        #: of the hot loop's bytecode.  Bit-identical by construction.
        self.kernel_tier = kernel_tier
        self.program = program
        self.thread_program = thread_program
        self.omp = omp
        self.nthreads = nthreads
        self.wait_policy = wait_policy
        self.seed = seed
        self.observers = list(observers)
        self.flow_control = flow_control
        #: Scheduling quantum in *instructions* — batched block events make an
        #: event-count quantum far too coarse for balanced interleavings.
        self.quantum_instructions = quantum_instructions
        self.max_events = max_events
        if batch_events is None:
            batch_events = default_batch_events()
        self.batch_events = batch_events

        self._threads = [
            _Thread(tid, thread_program.thread_main(tid, nthreads))
            for tid in range(nthreads)
        ]
        nblocks = program.num_blocks
        #: The block-event ring owns the execution-count table while the
        #: batched path is active; ``exec_counts`` is then materialized from
        #: it at the end of :meth:`run`.
        self._ring: Optional[EventRing] = (
            EventRing(
                program.blocks, nthreads, self.observers,
                capacity=batch_capacity,
            )
            if batch_events
            else None
        )
        self.exec_counts: List[List[int]] = [
            [0] * nblocks for _ in range(nthreads)
        ]
        self.total_instructions = 0
        self.filtered_instructions = 0
        self.per_thread_total = [0] * nthreads
        self.per_thread_filtered = [0] * nthreads
        self.num_events = 0
        self._gseq = 0
        self._barriers: Dict[int, List[int]] = {}
        self._locks: Dict[int, _Lock] = {}
        self._chunks: Dict[int, int] = {}
        self._singles: set = set()
        self._rng = random.Random(seed)
        #: Set whenever any thread's state changes; the scheduler only
        #: rebuilds its runnable list (and re-checks completion/deadlock)
        #: on dirty rounds.  The cached run-queue (and its numpy mirror for
        #: columnar flow control, see :meth:`_rebuild_runnable`) is keyed
        #: off this flag.
        self._sched_dirty = True
        self._runnable: List[int] = []
        self._runnable_arr = None
        #: Observers that actually override ``on_sync``: the per-sync
        #: dispatch loop skips base-class no-ops.
        self._sync_obs = [
            ob for ob in self.observers
            if type(ob).on_sync is not Observer.on_sync
            or type(ob).on_sync_batch is not Observer.on_sync_batch
            or type(ob).on_sync_rows is not Observer.on_sync_rows
        ]
        #: Split of ``_sync_obs`` for buffered delivery: observers that
        #: natively consume row batches get the buffer list itself (no
        #: transpose); the rest get columns via ``on_sync_batch``.
        self._sync_obs_rows = [
            ob for ob in self._sync_obs
            if type(ob).on_sync_rows is not Observer.on_sync_rows
        ]
        self._sync_obs_cols = [
            ob for ob in self._sync_obs
            if type(ob).on_sync_rows is Observer.on_sync_rows
        ]
        #: Sync-event buffer: ``(tid, kind, obj_id, response, gseq)`` rows,
        #: unzipped into columns at flush.  Active only when every observer
        #: declared its final state independent of block/sync interleaving
        #: (the ring's ``flush_on_sync`` is False): syncs then reach
        #: observers through ``on_sync_batch`` in gseq-ordered runs instead
        #: of one Python call per observer per sync.  ``None`` means
        #: per-event delivery.
        self._sync_buf = (
            []
            if self._ring is not None and not self._ring.flush_on_sync
            else None
        )
        #: Per-thread scheduler tapes (see repro.exec_engine.schedcore),
        #: compiled when the batched path is active and every construct is
        #: a known built-in; ``None`` falls back to the generator path.
        if sched_compile is None:
            sched_compile = default_sched_compile()
        self._streams = (
            compile_streams(thread_program, nthreads)
            if (self._ring is not None and sched_compile)
            else None
        )

    # -- shared bookkeeping -------------------------------------------------

    def _exec_block(self, tid: int, block: BasicBlock, repeat: int) -> None:
        n = block.n_instr * repeat
        self.total_instructions += n
        self.per_thread_total[tid] += n
        if not block.image.is_library:
            self.filtered_instructions += n
            self.per_thread_filtered[tid] += n
        if self._ring is not None:
            self._ring.append(tid, block.bid, repeat)
            return
        start = self.exec_counts[tid][block.bid]
        self.exec_counts[tid][block.bid] = start + repeat
        for ob in self.observers:
            ob.on_block(tid, block, repeat, start)

    def _sync(self, tid: int, kind: str, obj_id: int, response) -> None:
        g = self._gseq
        self._gseq = g + 1
        buf = self._sync_buf
        if buf is not None:
            buf.append((tid, kind, obj_id, response, g))
            if len(buf) >= SYNC_BUFFER_LIMIT:
                self._flush_syncs()
            return
        ring = self._ring
        if ring is not None and ring.flush_on_sync:
            # Some attached observer correlates the block and sync streams
            # (lint concurrency passes, DCFG building): every buffered
            # block event must precede this sync action.
            ring.flush()
        for ob in self._sync_obs:
            ob.on_sync(tid, kind, obj_id, response, g)

    def _flush_syncs(self) -> None:
        """Deliver the buffered sync events in one batch per observer.

        The buffer holds rows (one tuple append per sync on the hot path).
        Row-native observers receive the buffer directly through
        ``on_sync_rows`` (they copy it; the list is cleared and reused
        here); the ``zip(*)`` transpose into columns only runs when some
        attached observer still takes ``on_sync_batch``.
        """
        buf = self._sync_buf
        if not buf:
            return
        for ob in self._sync_obs_rows:
            ob.on_sync_rows(buf)
        cols_obs = self._sync_obs_cols
        if cols_obs:
            tids, kinds, obj_ids, responses, gseqs = zip(*buf)
            for ob in cols_obs:
                ob.on_sync_batch(tids, kinds, obj_ids, responses, gseqs)
        buf.clear()

    # -- synchronization handling --------------------------------------------

    def _block_thread(self, thread: _Thread) -> None:
        thread.state = ThreadState.BLOCKED
        self._sched_dirty = True
        if self.wait_policy is WaitPolicy.PASSIVE:
            self._exec_block(thread.tid, self.omp.futex_wait, 1)

    def _wake_thread(self, thread: _Thread) -> None:
        thread.state = ThreadState.RUNNABLE
        self._sched_dirty = True
        if self.wait_policy is WaitPolicy.PASSIVE:
            self._exec_block(thread.tid, self.omp.futex_wake, 1)

    def _handle_barrier(self, thread: _Thread, event: BarrierWait) -> None:
        bid = event.barrier_id
        arrived = self._barriers.setdefault(bid, [])
        self._exec_block(thread.tid, self.omp.barrier_enter, 1)
        self._sync(thread.tid, SYNC_BARRIER, bid, None)
        arrived.append(thread.tid)
        if len(arrived) == self.nthreads:
            for tid2 in arrived:
                self._sync(tid2, SYNC_BARRIER_REL, bid, None)
                other = self._threads[tid2]
                if other is not thread:
                    self._wake_thread(other)
                self._exec_block(tid2, self.omp.barrier_exit, 1)
            del self._barriers[bid]
        else:
            self._block_thread(thread)

    def _handle_lock_acquire(self, thread: _Thread, event: LockAcquire) -> None:
        lock = self._locks.setdefault(event.lock_id, _Lock())
        if lock.owner is None:
            lock.owner = thread.tid
            self._exec_block(thread.tid, self.omp.lock_acquire, 1)
            self._sync(thread.tid, SYNC_LOCK_ACQ, event.lock_id, None)
        else:
            lock.waiters.append(thread.tid)
            self._block_thread(thread)

    def _handle_lock_release(self, thread: _Thread, event: LockRelease) -> None:
        lock = self._locks.get(event.lock_id)
        if lock is None or lock.owner != thread.tid:
            raise ExecutionError(
                f"thread {thread.tid} released lock {event.lock_id} it does "
                f"not own"
            )
        self._exec_block(thread.tid, self.omp.lock_release, 1)
        self._sync(thread.tid, SYNC_LOCK_REL, event.lock_id, None)
        if lock.waiters:
            next_tid = lock.waiters.pop(0)
            lock.owner = next_tid
            waiter = self._threads[next_tid]
            self._wake_thread(waiter)
            self._exec_block(next_tid, self.omp.lock_acquire, 1)
            self._sync(next_tid, SYNC_LOCK_ACQ, event.lock_id, None)
        else:
            lock.owner = None

    def _handle_chunk(self, thread: _Thread, event: ChunkRequest) -> None:
        cursor = self._chunks.get(event.loop_id, 0)
        self._exec_block(thread.tid, self.omp.chunk_fetch, 1)
        if cursor >= event.total_iters:
            response = -1
        else:
            response = cursor
            self._chunks[event.loop_id] = cursor + event.chunk_size
        self._sync(thread.tid, SYNC_CHUNK, event.loop_id, response)
        thread.response = response

    def _handle_single(self, thread: _Thread, event: SingleRequest) -> None:
        granted = event.single_id not in self._singles
        if granted:
            self._singles.add(event.single_id)
        self._sync(thread.tid, SYNC_SINGLE, event.single_id, granted)
        thread.response = granted

    def _dispatch(self, thread: _Thread, event) -> None:
        if type(event) is BlockExec:
            self._exec_block(thread.tid, event.block, event.repeat)
        elif type(event) is BarrierWait:
            self._handle_barrier(thread, event)
        elif type(event) is LockAcquire:
            self._handle_lock_acquire(thread, event)
        elif type(event) is LockRelease:
            self._handle_lock_release(thread, event)
        elif type(event) is ChunkRequest:
            self._handle_chunk(thread, event)
        elif type(event) is SingleRequest:
            self._handle_single(thread, event)
        elif type(event) is Reduce:
            self._exec_block(thread.tid, self.omp.reduce_combine, 1)
        else:
            raise ExecutionError(f"unknown event {event!r}")

    # -- main loop ------------------------------------------------------------

    def _rebuild_runnable(self) -> Optional[List[int]]:
        """Recompute the cached run-queue; called on dirty rounds only.

        Returns the runnable tid list, or ``None`` when every thread is
        done.  Raises :class:`DeadlockError` when live threads are all
        blocked.  With flow control attached, the queue's numpy mirror is
        rebuilt too — the columnar eligible-selection path reuses it every
        round until the next invalidation.
        """
        threads = self._threads
        runnable = [
            t.tid for t in threads if t.state is ThreadState.RUNNABLE
        ]
        self._runnable = runnable
        self._sched_dirty = False
        if not runnable:
            if all(t.state is ThreadState.DONE for t in threads):
                return None
            blocked = [
                t.tid for t in threads if t.state is ThreadState.BLOCKED
            ]
            raise DeadlockError(
                f"all live threads blocked: {blocked} "
                f"(barriers={dict(self._barriers)!r})"
            )
        if self.flow_control is not None:
            self._runnable_arr = np.array(runnable, dtype=np.int64)
        return runnable

    def _finish_run(self, num_events: int) -> EngineResult:
        """Common end-of-run tail: counts, observer finish, metrics."""
        self.num_events = num_events
        ring = self._ring
        if ring is not None:
            self.exec_counts = ring.exec_counts()  # flushes the ring
        if self._sync_buf is not None:
            self._flush_syncs()
        for ob in self.observers:
            ob.on_finish()
        hb = active_heartbeat()
        if hb is not None:  # rate-limited, so many short runs coalesce
            hb.beat(events=num_events, phase="replay")
        reg = active_metrics()
        if reg is not None:  # once per run, never per event
            reg.inc("engine.runs")
            reg.inc("engine.events", num_events)
            if ring is not None:
                reg.inc("engine.ring.flushes", ring.flushes)
                reg.inc("engine.ring.small_flushes", ring.small_flushes)
                reg.inc("engine.ring.events_flushed", ring.events_flushed)
        return EngineResult(
            total_instructions=self.total_instructions,
            filtered_instructions=self.filtered_instructions,
            per_thread_total=list(self.per_thread_total),
            per_thread_filtered=list(self.per_thread_filtered),
            exec_counts=[list(row) for row in self.exec_counts],
            num_events=self.num_events,
            wait_policy=self.wait_policy,
            seed=self.seed,
        )

    def run(self) -> EngineResult:
        """Execute the program to completion and return the summary."""
        if self._streams is not None:
            return self._run_compiled()
        threads = self._threads
        spin_block = self.omp.spin_block
        spin_iters = self.omp.spin.iterations_per_visit
        active = self.wait_policy is WaitPolicy.ACTIVE
        rng = self._rng
        ring = self._ring

        # Hot-loop locals.  The batched inner loop below additionally
        # inlines the BlockExec case around direct ring-buffer appends; the
        # legacy path routes every event through ``_dispatch`` exactly as
        # the original per-event implementation did.
        per_thread_total = self.per_thread_total
        per_thread_filtered = self.per_thread_filtered
        runnable_state = ThreadState.RUNNABLE
        getrandbits = rng.getrandbits
        rng_random = rng.random
        quantum = self.quantum_instructions
        flow = self.flow_control
        max_events = self.max_events
        runnable: List[int] = []
        num_events = 0
        self._sched_dirty = True
        # Progress heartbeat, counter-gated: when installed, the hot loop
        # pays one decrement per *scheduling round* (thousands of events),
        # and the beat itself is wall-clock rate-limited; when not, a
        # single is-None check hoisted here.
        hb = active_heartbeat()
        hb_countdown = 0
        if ring is not None:
            ring_rows = ring.buffers()
            append_row = ring_rows.append
            ring_encode = ring.encode
            ring_capacity = ring.capacity
            ring_flush = ring.flush

        while True:
            if hb is not None:
                hb_countdown -= 1
                if hb_countdown <= 0:
                    hb.beat(events=num_events, phase="replay")
                    hb_countdown = 256
            # Thread states change only at sync blocking/waking and thread
            # exit — the runnable list (and the completion/deadlock check)
            # is recomputed only on rounds after such a change.
            if self._sched_dirty:
                runnable = self._rebuild_runnable()
                if runnable is None:
                    break

            # Blocked threads under the ACTIVE policy burn spin iterations
            # every scheduling round — host-schedule-dependent instruction
            # counts, the noise source naive SimPoint trips over.
            if active:
                for t in threads:
                    if t.state is ThreadState.BLOCKED:
                        self._exec_block(t.tid, spin_block, spin_iters)

            if flow is not None:
                eligible = flow.eligible(
                    per_thread_filtered, runnable, self._runnable_arr
                )
            else:
                eligible = runnable
            # Inlined ``rng.randrange(len(eligible))``: the exact
            # ``Random._randbelow_with_getrandbits`` algorithm, consuming
            # the identical generator stream (interleavings depend on it).
            n_el = len(eligible)
            k = n_el.bit_length()
            r = getrandbits(k)
            while r >= n_el:
                r = getrandbits(k)
            tid = eligible[r]
            thread = threads[tid]

            jitter = 1.0 + rng_random() * 0.5
            stop_at = per_thread_total[tid] + int(quantum * jitter)
            if ring is not None:
                # Batched fast path: the BlockExec case is inlined reading
                # the event's precomputed slots; this thread's totals live
                # in locals and sync back to engine state around any
                # non-block event (whose handlers read/write that state).
                send = thread.gen.send
                response = thread.response
                thread.response = None
                total_acc = 0
                filtered_acc = 0
                ptt = per_thread_total[tid]
                ptf = per_thread_filtered[tid]
                while ptt < stop_at:
                    try:
                        event = send(response)
                    except StopIteration:
                        thread.state = ThreadState.DONE
                        self._sched_dirty = True
                        break
                    response = None
                    num_events += 1
                    if type(event) is BlockExec:
                        n = event.n_total
                        total_acc += n
                        ptt += n
                        if not event.is_library:
                            filtered_acc += n
                            ptf += n
                        append_row(
                            ring_encode(tid, event.bid, event.repeat)
                        )
                        if len(ring_rows) >= ring_capacity:
                            ring_flush()
                    else:
                        per_thread_total[tid] = ptt
                        per_thread_filtered[tid] = ptf
                        self.total_instructions += total_acc
                        self.filtered_instructions += filtered_acc
                        total_acc = 0
                        filtered_acc = 0
                        self._dispatch(thread, event)
                        response = thread.response
                        thread.response = None
                        ptt = per_thread_total[tid]
                        ptf = per_thread_filtered[tid]
                        if thread.state is not runnable_state:
                            break
                per_thread_total[tid] = ptt
                per_thread_filtered[tid] = ptf
                self.total_instructions += total_acc
                self.filtered_instructions += filtered_acc
                thread.response = response
            else:
                while (
                    per_thread_total[tid] < stop_at
                    and thread.state is runnable_state
                ):
                    try:
                        event = thread.gen.send(thread.response)
                    except StopIteration:
                        thread.state = ThreadState.DONE
                        self._sched_dirty = True
                        break
                    thread.response = None
                    self._dispatch(thread, event)
                    num_events += 1
            if max_events is not None and num_events > max_events:
                self.num_events = num_events
                raise ExecutionError(
                    f"exceeded max_events={max_events}; likely runaway "
                    f"program"
                )

        return self._finish_run(num_events)

    def _run_compiled(self) -> EngineResult:
        """The tape-driven hot loop (see :mod:`.schedcore`).

        Bit-identical to :meth:`run`'s generator paths: identical event
        order, rng-stream consumption, observer state and result.  The
        differences are purely mechanical — block runs are consumed with
        one ``bisect_left`` over a cumulative-instruction list per quantum
        and C-speed slice ``extend``s into the ring buffers; barrier ops
        are handled inline (columnar sync buffering, direct ring appends)
        instead of through the per-event handler chain; and the run-queue
        is maintained incrementally with sorted inserts/removes instead of
        being rebuilt from thread states on every invalidation.

        The loop itself lives in :mod:`repro.perf.kernels` as a source
        template rendered per :attr:`kernel_tier`: the ``reference`` tier
        keeps every configuration test as a runtime branch, the
        ``compiled`` tier folds this run's configuration (wait policy,
        flow control, event bounding) out of the bytecode.  Both renders
        share one statement of the semantics, so they are bit-identical
        by construction.
        """
        kernel = get_kernel(
            self.kernel_tier,
            active=self.wait_policy is WaitPolicy.ACTIVE,
            flow=self.flow_control is not None,
            bounded=self.max_events is not None,
            namespace=_KERNEL_NAMESPACE,
        )
        # The kernel template stays heartbeat-free (it must remain
        # bit-identical to the reference render); the compiled tier
        # beats at run granularity — entry here, exit in _finish_run.
        hb = active_heartbeat()
        if hb is not None:
            hb.beat(phase="replay")
        return kernel(self)

#: Globals for the rendered scheduler kernels (see
#: :func:`repro.perf.kernels.get_kernel`): everything the template
#: references that is not reachable from the engine instance.  Passed in
#: by the engine so the kernels module never imports this one.
_KERNEL_NAMESPACE = {
    "np": np,
    "bisect_left": bisect_left,
    "ThreadState": ThreadState,
    "WaitPolicy": WaitPolicy,
    "DeadlockError": DeadlockError,
    "ExecutionError": ExecutionError,
    "SYNC_BARRIER": SYNC_BARRIER,
    "SYNC_BARRIER_REL": SYNC_BARRIER_REL,
    "SYNC_BUFFER_LIMIT": SYNC_BUFFER_LIMIT,
    "OP_TILED": OP_TILED,
    "OP_TABLE": OP_TABLE,
    "OP_SYNC": OP_SYNC,
    "OP_CHUNK": OP_CHUNK,
    "OP_SINGLE": OP_SINGLE,
    "OP_BARRIER": OP_BARRIER,
    "OP_DONE": OP_DONE,
}
