"""The functional execution engine (Pin's role in the paper).

Runs a :class:`~repro.runtime.thread.ThreadProgram` against its static
:class:`~repro.isa.image.Program` under a seeded host scheduler.  The seed
models run-to-run host nondeterminism: different seeds interleave threads
differently, which changes spin-loop instruction counts (ACTIVE wait policy)
and dynamic-schedule chunk assignments — while the application's *work*
(worker-loop trip counts, hence ``(PC, count)`` markers) stays invariant.

Synchronization library code (:class:`~repro.runtime.omp.OmpRuntime` blocks)
is executed here on behalf of threads: barrier entry/exit, spin iterations
while blocked (ACTIVE), futex paths (PASSIVE), lock handoffs, chunk fetches.

Two observer-dispatch paths exist.  The default *batched* path buffers
block events in a :class:`~repro.perf.ring.EventRing` and flushes them to
observers as numpy column batches (flushed before every sync event, so
block/sync ordering is exact); the *legacy* path dispatches every event
through ``Observer.on_block`` as the original implementation did.  Both
produce bit-identical :class:`EngineResult` and observer state — the
batched path is just faster.  Select with ``batch_events=`` or the
``REPRO_BATCH_EVENTS`` environment variable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..config import default_batch_events
from ..errors import DeadlockError, ExecutionError
from ..obs.tracer import active_metrics
from ..isa.blocks import BasicBlock
from ..isa.image import Program
from ..perf.ring import DEFAULT_CAPACITY, EventRing
from ..policy import WaitPolicy
from .events import (
    BarrierWait,
    BlockExec,
    ChunkRequest,
    LockAcquire,
    LockRelease,
    Reduce,
    SingleRequest,
    SYNC_BARRIER,
    SYNC_CHUNK,
    SYNC_LOCK_ACQ,
    SYNC_LOCK_REL,
    SYNC_SINGLE,
)
from .flowcontrol import FlowControl
from .observers import Observer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.omp import OmpRuntime
    from ..runtime.thread import ThreadProgram


class ThreadState(Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


class _Thread:
    __slots__ = ("tid", "gen", "state", "response")

    def __init__(self, tid: int, gen) -> None:
        self.tid = tid
        self.gen = gen
        self.state = ThreadState.RUNNABLE
        self.response = None


class _Lock:
    __slots__ = ("owner", "waiters")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.waiters: List[int] = []


@dataclass
class EngineResult:
    """Summary of one functional execution."""

    total_instructions: int
    filtered_instructions: int
    per_thread_total: List[int]
    per_thread_filtered: List[int]
    exec_counts: List[List[int]]
    num_events: int
    wait_policy: WaitPolicy
    seed: int

    @property
    def library_instructions(self) -> int:
        return self.total_instructions - self.filtered_instructions


class ExecutionEngine:
    """Interleaves thread generators and resolves synchronization."""

    def __init__(
        self,
        program: Program,
        thread_program: "ThreadProgram",
        omp: "OmpRuntime",
        nthreads: int,
        *,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        seed: int = 0,
        observers: Sequence[Observer] = (),
        flow_control: Optional[FlowControl] = None,
        quantum_instructions: int = 600,
        max_events: Optional[int] = None,
        batch_events: Optional[bool] = None,
        batch_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if nthreads < 1:
            raise ExecutionError(f"need at least one thread, got {nthreads}")
        self.program = program
        self.thread_program = thread_program
        self.omp = omp
        self.nthreads = nthreads
        self.wait_policy = wait_policy
        self.seed = seed
        self.observers = list(observers)
        self.flow_control = flow_control
        #: Scheduling quantum in *instructions* — batched block events make an
        #: event-count quantum far too coarse for balanced interleavings.
        self.quantum_instructions = quantum_instructions
        self.max_events = max_events
        if batch_events is None:
            batch_events = default_batch_events()
        self.batch_events = batch_events

        self._threads = [
            _Thread(tid, thread_program.thread_main(tid, nthreads))
            for tid in range(nthreads)
        ]
        nblocks = program.num_blocks
        #: The block-event ring owns the execution-count table while the
        #: batched path is active; ``exec_counts`` is then materialized from
        #: it at the end of :meth:`run`.
        self._ring: Optional[EventRing] = (
            EventRing(
                program.blocks, nthreads, self.observers,
                capacity=batch_capacity,
            )
            if batch_events
            else None
        )
        self.exec_counts: List[List[int]] = [
            [0] * nblocks for _ in range(nthreads)
        ]
        self.total_instructions = 0
        self.filtered_instructions = 0
        self.per_thread_total = [0] * nthreads
        self.per_thread_filtered = [0] * nthreads
        self.num_events = 0
        self._gseq = 0
        self._barriers: Dict[int, List[int]] = {}
        self._locks: Dict[int, _Lock] = {}
        self._chunks: Dict[int, int] = {}
        self._singles: set = set()
        self._rng = random.Random(seed)
        #: Set whenever any thread's state changes; the scheduler only
        #: rebuilds its runnable list (and re-checks completion/deadlock)
        #: on dirty rounds.
        self._sched_dirty = True

    # -- shared bookkeeping -------------------------------------------------

    def _exec_block(self, tid: int, block: BasicBlock, repeat: int) -> None:
        n = block.n_instr * repeat
        self.total_instructions += n
        self.per_thread_total[tid] += n
        if not block.image.is_library:
            self.filtered_instructions += n
            self.per_thread_filtered[tid] += n
        if self._ring is not None:
            self._ring.append(tid, block.bid, repeat)
            return
        start = self.exec_counts[tid][block.bid]
        self.exec_counts[tid][block.bid] = start + repeat
        for ob in self.observers:
            ob.on_block(tid, block, repeat, start)

    def _sync(self, tid: int, kind: str, obj_id: int, response) -> None:
        g = self._gseq
        self._gseq = g + 1
        ring = self._ring
        if ring is not None and ring.flush_on_sync:
            # Some attached observer correlates the block and sync streams
            # (lint concurrency passes, DCFG building): every buffered
            # block event must precede this sync action.
            ring.flush()
        for ob in self.observers:
            ob.on_sync(tid, kind, obj_id, response, g)

    # -- synchronization handling --------------------------------------------

    def _block_thread(self, thread: _Thread) -> None:
        thread.state = ThreadState.BLOCKED
        self._sched_dirty = True
        if self.wait_policy is WaitPolicy.PASSIVE:
            self._exec_block(thread.tid, self.omp.futex_wait, 1)

    def _wake_thread(self, thread: _Thread) -> None:
        thread.state = ThreadState.RUNNABLE
        self._sched_dirty = True
        if self.wait_policy is WaitPolicy.PASSIVE:
            self._exec_block(thread.tid, self.omp.futex_wake, 1)

    def _handle_barrier(self, thread: _Thread, event: BarrierWait) -> None:
        bid = event.barrier_id
        arrived = self._barriers.setdefault(bid, [])
        self._exec_block(thread.tid, self.omp.barrier_enter, 1)
        self._sync(thread.tid, SYNC_BARRIER, bid, None)
        arrived.append(thread.tid)
        if len(arrived) == self.nthreads:
            for tid2 in arrived:
                self._sync(tid2, SYNC_BARRIER + "_rel", bid, None)
                other = self._threads[tid2]
                if other is not thread:
                    self._wake_thread(other)
                self._exec_block(tid2, self.omp.barrier_exit, 1)
            del self._barriers[bid]
        else:
            self._block_thread(thread)

    def _handle_lock_acquire(self, thread: _Thread, event: LockAcquire) -> None:
        lock = self._locks.setdefault(event.lock_id, _Lock())
        if lock.owner is None:
            lock.owner = thread.tid
            self._exec_block(thread.tid, self.omp.lock_acquire, 1)
            self._sync(thread.tid, SYNC_LOCK_ACQ, event.lock_id, None)
        else:
            lock.waiters.append(thread.tid)
            self._block_thread(thread)

    def _handle_lock_release(self, thread: _Thread, event: LockRelease) -> None:
        lock = self._locks.get(event.lock_id)
        if lock is None or lock.owner != thread.tid:
            raise ExecutionError(
                f"thread {thread.tid} released lock {event.lock_id} it does "
                f"not own"
            )
        self._exec_block(thread.tid, self.omp.lock_release, 1)
        self._sync(thread.tid, SYNC_LOCK_REL, event.lock_id, None)
        if lock.waiters:
            next_tid = lock.waiters.pop(0)
            lock.owner = next_tid
            waiter = self._threads[next_tid]
            self._wake_thread(waiter)
            self._exec_block(next_tid, self.omp.lock_acquire, 1)
            self._sync(next_tid, SYNC_LOCK_ACQ, event.lock_id, None)
        else:
            lock.owner = None

    def _handle_chunk(self, thread: _Thread, event: ChunkRequest) -> None:
        cursor = self._chunks.get(event.loop_id, 0)
        self._exec_block(thread.tid, self.omp.chunk_fetch, 1)
        if cursor >= event.total_iters:
            response = -1
        else:
            response = cursor
            self._chunks[event.loop_id] = cursor + event.chunk_size
        self._sync(thread.tid, SYNC_CHUNK, event.loop_id, response)
        thread.response = response

    def _handle_single(self, thread: _Thread, event: SingleRequest) -> None:
        granted = event.single_id not in self._singles
        if granted:
            self._singles.add(event.single_id)
        self._sync(thread.tid, SYNC_SINGLE, event.single_id, granted)
        thread.response = granted

    def _dispatch(self, thread: _Thread, event) -> None:
        if type(event) is BlockExec:
            self._exec_block(thread.tid, event.block, event.repeat)
        elif type(event) is BarrierWait:
            self._handle_barrier(thread, event)
        elif type(event) is LockAcquire:
            self._handle_lock_acquire(thread, event)
        elif type(event) is LockRelease:
            self._handle_lock_release(thread, event)
        elif type(event) is ChunkRequest:
            self._handle_chunk(thread, event)
        elif type(event) is SingleRequest:
            self._handle_single(thread, event)
        elif type(event) is Reduce:
            self._exec_block(thread.tid, self.omp.reduce_combine, 1)
        else:
            raise ExecutionError(f"unknown event {event!r}")

    # -- main loop ------------------------------------------------------------

    def run(self) -> EngineResult:
        """Execute the program to completion and return the summary."""
        threads = self._threads
        spin_block = self.omp.spin_block
        spin_iters = self.omp.spin.iterations_per_visit
        active = self.wait_policy is WaitPolicy.ACTIVE
        rng = self._rng
        ring = self._ring

        # Hot-loop locals.  The batched inner loop below additionally
        # inlines the BlockExec case around direct ring-buffer appends; the
        # legacy path routes every event through ``_dispatch`` exactly as
        # the original per-event implementation did.
        per_thread_total = self.per_thread_total
        per_thread_filtered = self.per_thread_filtered
        runnable_state = ThreadState.RUNNABLE
        getrandbits = rng.getrandbits
        rng_random = rng.random
        quantum = self.quantum_instructions
        flow = self.flow_control
        max_events = self.max_events
        runnable: List[int] = []
        num_events = 0
        self._sched_dirty = True
        if ring is not None:
            ring_tids, ring_bids, ring_repeats = ring.buffers()
            append_tid = ring_tids.append
            append_bid = ring_bids.append
            append_repeat = ring_repeats.append
            ring_capacity = ring.capacity
            ring_flush = ring.flush

        while True:
            # Thread states change only at sync blocking/waking and thread
            # exit — the runnable list (and the completion/deadlock check)
            # is recomputed only on rounds after such a change.
            if self._sched_dirty:
                runnable = [
                    t.tid for t in threads if t.state is runnable_state
                ]
                self._sched_dirty = False
                if not runnable:
                    if all(t.state is ThreadState.DONE for t in threads):
                        break
                    blocked = [
                        t.tid
                        for t in threads
                        if t.state is ThreadState.BLOCKED
                    ]
                    raise DeadlockError(
                        f"all live threads blocked: {blocked} "
                        f"(barriers={dict(self._barriers)!r})"
                    )

            # Blocked threads under the ACTIVE policy burn spin iterations
            # every scheduling round — host-schedule-dependent instruction
            # counts, the noise source naive SimPoint trips over.
            if active:
                for t in threads:
                    if t.state is ThreadState.BLOCKED:
                        self._exec_block(t.tid, spin_block, spin_iters)

            if flow is not None:
                eligible = flow.eligible(per_thread_filtered, runnable)
            else:
                eligible = runnable
            # Inlined ``rng.randrange(len(eligible))``: the exact
            # ``Random._randbelow_with_getrandbits`` algorithm, consuming
            # the identical generator stream (interleavings depend on it).
            n_el = len(eligible)
            k = n_el.bit_length()
            r = getrandbits(k)
            while r >= n_el:
                r = getrandbits(k)
            tid = eligible[r]
            thread = threads[tid]

            jitter = 1.0 + rng_random() * 0.5
            stop_at = per_thread_total[tid] + int(quantum * jitter)
            if ring is not None:
                # Batched fast path: the BlockExec case is inlined reading
                # the event's precomputed slots; this thread's totals live
                # in locals and sync back to engine state around any
                # non-block event (whose handlers read/write that state).
                send = thread.gen.send
                response = thread.response
                thread.response = None
                total_acc = 0
                filtered_acc = 0
                ptt = per_thread_total[tid]
                ptf = per_thread_filtered[tid]
                while ptt < stop_at:
                    try:
                        event = send(response)
                    except StopIteration:
                        thread.state = ThreadState.DONE
                        self._sched_dirty = True
                        break
                    response = None
                    num_events += 1
                    if type(event) is BlockExec:
                        n = event.n_total
                        total_acc += n
                        ptt += n
                        if not event.is_library:
                            filtered_acc += n
                            ptf += n
                        append_tid(tid)
                        append_bid(event.bid)
                        append_repeat(event.repeat)
                        if len(ring_tids) >= ring_capacity:
                            ring_flush()
                    else:
                        per_thread_total[tid] = ptt
                        per_thread_filtered[tid] = ptf
                        self.total_instructions += total_acc
                        self.filtered_instructions += filtered_acc
                        total_acc = 0
                        filtered_acc = 0
                        self._dispatch(thread, event)
                        response = thread.response
                        thread.response = None
                        ptt = per_thread_total[tid]
                        ptf = per_thread_filtered[tid]
                        if thread.state is not runnable_state:
                            break
                per_thread_total[tid] = ptt
                per_thread_filtered[tid] = ptf
                self.total_instructions += total_acc
                self.filtered_instructions += filtered_acc
                thread.response = response
            else:
                while (
                    per_thread_total[tid] < stop_at
                    and thread.state is runnable_state
                ):
                    try:
                        event = thread.gen.send(thread.response)
                    except StopIteration:
                        thread.state = ThreadState.DONE
                        self._sched_dirty = True
                        break
                    thread.response = None
                    self._dispatch(thread, event)
                    num_events += 1
            if max_events is not None and num_events > max_events:
                self.num_events = num_events
                raise ExecutionError(
                    f"exceeded max_events={max_events}; likely runaway "
                    f"program"
                )

        self.num_events = num_events
        if ring is not None:
            self.exec_counts = ring.exec_counts()  # flushes the ring
        for ob in self.observers:
            ob.on_finish()
        reg = active_metrics()
        if reg is not None:  # once per run, never per event
            reg.inc("engine.runs")
            reg.inc("engine.events", num_events)
            if ring is not None:
                reg.inc("engine.ring.flushes", ring.flushes)
                reg.inc("engine.ring.small_flushes", ring.small_flushes)
                reg.inc("engine.ring.events_flushed", ring.events_flushed)
        return EngineResult(
            total_instructions=self.total_instructions,
            filtered_instructions=self.filtered_instructions,
            per_thread_total=list(self.per_thread_total),
            per_thread_filtered=list(self.per_thread_filtered),
            exec_counts=[list(row) for row in self.exec_counts],
            num_events=self.num_events,
            wait_policy=self.wait_policy,
            seed=self.seed,
        )
