"""Flow control: equal forward progress during analysis.

Section III-B of the paper: "we make sure that all threads in the application
make the same amount of forward progress during analysis ... to stabilize the
collected profile for any thread imbalance that is caused by external events
on the host processor".  We implement the same window rule over *filtered*
(application-image) instructions: a runnable thread may only be scheduled if
it is within ``window`` filtered instructions of the slowest runnable thread.
"""

from __future__ import annotations

from typing import List, Sequence


class FlowControl:
    """Window-based equal-progress policy over filtered instruction counts."""

    def __init__(self, window: int = 1_500) -> None:
        if window <= 0:
            raise ValueError("flow-control window must be positive")
        self.window = window

    def eligible(
        self,
        filtered_per_thread: Sequence[int],
        runnable: Sequence[int],
    ) -> List[int]:
        """Runnable thread ids allowed to make progress right now.

        The slowest runnable thread is always eligible, so this never
        introduces a livelock on its own.
        """
        if not runnable:
            return []
        floor = min(filtered_per_thread[tid] for tid in runnable)
        limit = floor + self.window
        return [tid for tid in runnable if filtered_per_thread[tid] <= limit]
