"""Flow control: equal forward progress during analysis.

Section III-B of the paper: "we make sure that all threads in the application
make the same amount of forward progress during analysis ... to stabilize the
collected profile for any thread imbalance that is caused by external events
on the host processor".  We implement the same window rule over *filtered*
(application-image) instructions: a runnable thread may only be scheduled if
it is within ``window`` filtered instructions of the slowest runnable thread.

Selection runs every scheduling round, so it has a columnar form: when the
engine hands over its cached run-queue as a numpy array (rebuilt only on
``_sched_dirty`` rounds, see
:meth:`~repro.exec_engine.engine.ExecutionEngine._rebuild_runnable`) and the
queue is wide enough to amortize numpy fixed costs, the floor/mask reduce
vectorially; narrow queues keep the scalar path, which is faster below the
crossover.  Both produce the identical eligible list (ascending tid order).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

#: Run-queue width at which the columnar eligible-selection path beats the
#: scalar scan: numpy's fixed per-call cost (array indexing, reduction
#: setup) needs this many lanes to amortize.
COLUMNAR_MIN_THREADS = 32


class FlowControl:
    """Window-based equal-progress policy over filtered instruction counts."""

    def __init__(self, window: int = 1_500) -> None:
        if window <= 0:
            raise ValueError("flow-control window must be positive")
        self.window = window

    def eligible(
        self,
        filtered_per_thread: Sequence[int],
        runnable: Sequence[int],
        runnable_arr: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Runnable thread ids allowed to make progress right now.

        The slowest runnable thread is always eligible, so this never
        introduces a livelock on its own.  ``runnable_arr`` is an optional
        numpy mirror of ``runnable`` (the engine's cached run-queue);
        with a wide queue it enables the columnar path.
        """
        if not runnable:
            return []
        if (
            runnable_arr is not None
            and len(runnable) >= COLUMNAR_MIN_THREADS
        ):
            return self.eligible_columnar(filtered_per_thread, runnable_arr)
        floor = min(filtered_per_thread[tid] for tid in runnable)
        limit = floor + self.window
        return [tid for tid in runnable if filtered_per_thread[tid] <= limit]

    def eligible_columnar(
        self,
        filtered_per_thread: Sequence[int],
        runnable_arr: np.ndarray,
    ) -> List[int]:
        """The same window rule as one gather + reduce + mask.

        Returns plain Python ints in the same ascending order as the
        scalar path — callers index the result with an rng draw, so the
        two paths must agree element for element.
        """
        vals = np.asarray(filtered_per_thread, dtype=np.int64)[runnable_arr]
        limit = vals.min() + self.window
        return runnable_arr[vals <= limit].tolist()
