"""Events yielded by thread generators to an execution driver.

Thread programs (see :mod:`repro.runtime.thread`) are Python generators that
yield these events.  Two drivers understand them: the functional
:class:`~repro.exec_engine.engine.ExecutionEngine` (Pin's role) and the
timing :class:`~repro.timing.mcsim.MultiCoreSimulator` (Sniper's role), so
the exact same program runs under both — the paper's binary-driven setup.

``BlockExec`` may carry ``repeat > 1``: the block (an innermost self-loop
body) executes that many consecutive times.  Batching keeps Python event
counts tractable at ref-input scales without changing observable semantics —
drivers expand batches wherever per-iteration detail matters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..isa.blocks import BasicBlock


class Event:
    """Base class for generator events."""

    __slots__ = ()


class BlockExec(Event):
    """Execute ``block`` ``repeat`` consecutive times.

    The derived values every driver needs per event — the block id, the
    total instruction count, the library flag — are precomputed here so hot
    loops read one slot each instead of chasing ``block.image`` attributes.
    Instances are immutable in practice and constructs may intern and
    re-yield the same instance many times (see ``LoopWork.emit``), which is
    why drivers must never mutate or retain-and-compare event identities.
    """

    __slots__ = ("block", "repeat", "bid", "n_total", "is_library")

    def __init__(self, block: "BasicBlock", repeat: int = 1) -> None:
        self.block = block
        self.repeat = repeat
        self.bid = block.bid
        self.n_total = block.n_instr * repeat
        self.is_library = block.image.is_library

    def __repr__(self) -> str:  # pragma: no cover
        return f"BlockExec({self.block.name}, x{self.repeat})"


class BarrierWait(Event):
    """Arrive at barrier ``barrier_id``; resume once all threads arrived."""

    __slots__ = ("barrier_id",)

    def __init__(self, barrier_id: int) -> None:
        self.barrier_id = barrier_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"BarrierWait({self.barrier_id})"


class LockAcquire(Event):
    """Acquire lock ``lock_id``; resume once owned."""

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int) -> None:
        self.lock_id = lock_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"LockAcquire({self.lock_id})"


class LockRelease(Event):
    """Release lock ``lock_id`` (must be held by this thread)."""

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int) -> None:
        self.lock_id = lock_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"LockRelease({self.lock_id})"


class ChunkRequest(Event):
    """Dynamic-schedule work request: driver replies with the next chunk
    start index, or -1 when the iteration space is exhausted."""

    __slots__ = ("loop_id", "chunk_size", "total_iters")

    def __init__(self, loop_id: int, chunk_size: int, total_iters: int) -> None:
        self.loop_id = loop_id
        self.chunk_size = chunk_size
        self.total_iters = total_iters

    def __repr__(self) -> str:  # pragma: no cover
        return f"ChunkRequest(loop={self.loop_id}, chunk={self.chunk_size})"


class SingleRequest(Event):
    """``omp single`` arbitration: driver replies True for exactly one
    thread per ``single_id`` instance."""

    __slots__ = ("single_id",)

    def __init__(self, single_id: int) -> None:
        self.single_id = single_id

    def __repr__(self) -> str:  # pragma: no cover
        return f"SingleRequest({self.single_id})"


class Reduce(Event):
    """OpenMP reduction combine: the driver executes the runtime's combine
    block (library code, atomic update of the shared accumulator)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "Reduce()"


#: Sync-event kind tags used by the recorder / replayer.
SYNC_BARRIER = "barrier"
#: The release half of a barrier: one per participating thread, emitted by
#: the engine when the last arrival opens the barrier.
SYNC_BARRIER_REL = SYNC_BARRIER + "_rel"
SYNC_LOCK_ACQ = "lock_acq"
SYNC_LOCK_REL = "lock_rel"
SYNC_CHUNK = "chunk"
SYNC_SINGLE = "single"
