"""LoopPoint reproduction: checkpoint-driven sampled simulation for
multi-threaded applications (Sabu, Patil, Heirman, Carlson — HPCA 2022).

Quickstart::

    from repro import get_workload, LoopPointPipeline, LoopPointOptions, WaitPolicy

    workload = get_workload("demo-matrix-1", nthreads=8)
    pipeline = LoopPointPipeline(
        workload, options=LoopPointOptions(wait_policy=WaitPolicy.PASSIVE)
    )
    result = pipeline.run()
    print(result.runtime_error_pct, result.speedup.theoretical_parallel)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.isa` / :mod:`repro.runtime` — the synthetic multi-threaded
  program model (binaries + OpenMP-like runtime).
* :mod:`repro.exec_engine` — functional execution (Pin's role).
* :mod:`repro.pinplay` — record/replay pinballs (PinPlay's role).
* :mod:`repro.dcfg` / :mod:`repro.profiling` / :mod:`repro.clustering` —
  the up-front analysis: DCFG loops, loop-aligned slices, filtered BBVs,
  SimPoint clustering.
* :mod:`repro.timing` — the multicore timing simulator (Sniper's role).
* :mod:`repro.core` — the LoopPoint pipeline itself.
* :mod:`repro.parallel` — process-pool region fan-out + on-disk artifact
  cache (``--jobs`` / ``--cache-dir``).
* :mod:`repro.baselines` — naive SimPoint, BarrierPoint, time-based sampling.
* :mod:`repro.workloads` — SPEC CPU2017-like / NPB-like workload models.
"""

from .config import (
    GAINESTOWN_8CORE,
    GAINESTOWN_16CORE,
    ReproScale,
    SystemConfig,
    get_scale,
)
from .core.looppoint import LoopPointOptions, LoopPointPipeline, LoopPointResult
from .core.speedup import SpeedupReport, compute_speedups
from .errors import ReproError
from .parallel import ArtifactCache, ExecutionStats
from .policy import WaitPolicy
from .timing.mcsim import MultiCoreSimulator, RegionOfInterest
from .timing.metrics import SimMetrics
from .workloads.registry import get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "GAINESTOWN_8CORE",
    "GAINESTOWN_16CORE",
    "ReproScale",
    "SystemConfig",
    "get_scale",
    "LoopPointOptions",
    "LoopPointPipeline",
    "LoopPointResult",
    "SpeedupReport",
    "compute_speedups",
    "ReproError",
    "ArtifactCache",
    "ExecutionStats",
    "WaitPolicy",
    "MultiCoreSimulator",
    "RegionOfInterest",
    "SimMetrics",
    "get_workload",
    "list_workloads",
    "__version__",
]
