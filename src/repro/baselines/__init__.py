"""Baseline sampling methodologies the paper compares against.

* :mod:`~repro.baselines.naive_simpoint` — the "naive adaptation of
  Simpoint" of Sec. II: fixed raw-instruction-count slices, aggregate
  (unfiltered, non-concatenated) BBVs, instruction-count region boundaries.
* :mod:`~repro.baselines.barrierpoint` — BarrierPoint (Carlson et al.,
  ISPASS 2014): inter-barrier regions as the unit of work.
* :mod:`~repro.baselines.time_sampling` — periodic time-based sampling
  (ESESC-style): bounded speedup because the whole application must still be
  traversed.
"""

from .naive_simpoint import NaiveSimPointPipeline, NaiveProfile
from .barrierpoint import BarrierPointPipeline, BarrierProfile
from .time_sampling import TimeSamplingResult, run_time_sampling, estimate_evaluation_days
from .hybrid import HybridChoice, choose_method

__all__ = [
    "NaiveSimPointPipeline",
    "NaiveProfile",
    "BarrierPointPipeline",
    "BarrierProfile",
    "TimeSamplingResult",
    "run_time_sampling",
    "estimate_evaluation_days",
    "HybridChoice",
    "choose_method",
]
