"""The hybrid methodology sketched in Sec. V-B of the paper.

"Overall, a hybrid approach can be chosen to speed up smaller applications"
— BarrierPoint outperforms LoopPoint when an application has many barriers
and its inter-barrier regions are *smaller* than loop-aligned slices; it is
useless when regions are giant (imagick) or absent (xz).  The hybrid
profiles both units of work and picks, per application, the methodology
with the better parallel speedup, subject to the BarrierPoint regions being
practical at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig, get_scale
from ..core.looppoint import LoopPointOptions, LoopPointPipeline
from ..core.speedup import compute_speedups
from ..policy import WaitPolicy
from ..workloads.base import Workload
from .barrierpoint import BarrierPointPipeline


@dataclass
class HybridChoice:
    """Which methodology the hybrid picked for one workload, and why."""

    workload: str
    method: str                      # "looppoint" | "barrierpoint"
    looppoint_parallel: float
    barrierpoint_parallel: float
    barrierpoint_practical: bool

    @property
    def chosen_parallel_speedup(self) -> float:
        return (
            self.barrierpoint_parallel if self.method == "barrierpoint"
            else self.looppoint_parallel
        )


def choose_method(
    workload: Workload,
    *,
    wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
    system: Optional[SystemConfig] = None,
    practicality_fraction: float = 0.25,
) -> HybridChoice:
    """Profile both units of work and pick the better methodology.

    BarrierPoint is considered *practical* only if its largest inter-barrier
    region is below ``practicality_fraction`` of the application (otherwise
    the representative is no smaller than the problem it was meant to
    shrink).
    """
    scale = get_scale()
    lp = LoopPointPipeline(
        workload,
        system=system,
        options=LoopPointOptions(wait_policy=wait_policy, scale=scale),
    )
    lp_speedup = compute_speedups(lp.profile(), lp.select().clusters)

    bp = BarrierPointPipeline(workload, system=system, wait_policy=wait_policy)
    bp_profile = bp.profile()
    practical = (
        len(bp_profile.regions) > 1
        and bp_profile.largest_region_instructions
        < practicality_fraction * bp_profile.filtered_instructions
    )
    bp_parallel = 0.0
    if practical:
        _serial, bp_parallel = bp.theoretical_speedups()

    method = (
        "barrierpoint"
        if practical and bp_parallel > lp_speedup.theoretical_parallel
        else "looppoint"
    )
    return HybridChoice(
        workload=workload.full_name,
        method=method,
        looppoint_parallel=lp_speedup.theoretical_parallel,
        barrierpoint_parallel=bp_parallel,
        barrierpoint_practical=practical,
    )
