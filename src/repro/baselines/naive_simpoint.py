"""The naive multi-threaded SimPoint adaptation (Sec. II of the paper).

Slices are fixed *raw* global-instruction-count intervals — spin and
synchronization-library instructions included — fingerprinted with one
aggregate BBV (summed over threads, unfiltered), and region boundaries are
global instruction counts.

Why it fails, per the paper (errors up to 68% with the ACTIVE wait policy):
raw instruction counts are not a unit of *work*.  The profiling run and the
simulation run execute different numbers of spin iterations, so an
instruction-count boundary lands on different application work in each run —
the regions simulated are simply not the regions that were selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..clustering.simpoint import (
    SimPointOptions,
    SimPointSelection,
    select_simpoints,
)
from ..config import GAINESTOWN_8CORE, SystemConfig, get_scale
from ..core.extrapolation import extrapolate_metrics
from ..errors import ProfilingError
from ..exec_engine.observers import Observer
from ..pinplay.pinball import Pinball
from ..pinplay.recorder import record_execution
from ..pinplay.replayer import ConstrainedReplayer
from ..policy import WaitPolicy
from ..timing.mcsim import (
    MultiCoreSimulator,
    RegionOfInterest,
)
from ..workloads.base import Workload


@dataclass
class NaiveSlice:
    """One fixed-size raw-instruction interval."""

    index: int
    start_instr: int
    end_instr: int
    bbv: np.ndarray

    @property
    def instructions(self) -> int:
        return self.end_instr - self.start_instr


@dataclass
class NaiveProfile:
    """All slices of a naive profiling pass."""

    slices: List[NaiveSlice]
    total_instructions: int

    def bbv_matrix(self) -> np.ndarray:
        return np.vstack([s.bbv for s in self.slices])

    def counts(self) -> np.ndarray:
        return np.array([s.instructions for s in self.slices], dtype=np.float64)


class _RawSlicer(Observer):
    """Cuts raw-count slices and collects aggregate, unfiltered BBVs."""

    def __init__(self, nblocks: int, slice_size: int) -> None:
        if slice_size <= 0:
            raise ProfilingError("slice_size must be positive")
        self.slice_size = slice_size
        self._bbv = np.zeros(nblocks, dtype=np.float64)
        self._count = 0
        self._start = 0
        self.slices: List[NaiveSlice] = []

    def on_block(self, tid, block, repeat, start_index) -> None:
        n = block.n_instr * repeat
        self._bbv[block.bid] += n
        self._count += n
        if self._count - self._start >= self.slice_size:
            self._close()

    def on_finish(self) -> None:
        if self._count > self._start or not self.slices:
            self._close()

    def _close(self) -> None:
        self.slices.append(
            NaiveSlice(
                index=len(self.slices),
                start_instr=self._start,
                end_instr=self._count,
                bbv=self._bbv.copy(),
            )
        )
        self._bbv[:] = 0.0
        self._start = self._count


class NaiveSimPointPipeline:
    """Profile, cluster, simulate, extrapolate — the naive way."""

    def __init__(
        self,
        workload: Workload,
        system: Optional[SystemConfig] = None,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        slice_size: Optional[int] = None,
        simpoint: Optional[SimPointOptions] = None,
        record_seed: int = 0,
    ) -> None:
        self.workload = workload
        self.system = system or GAINESTOWN_8CORE.with_cores(
            max(GAINESTOWN_8CORE.num_cores, workload.nthreads)
        )
        self.wait_policy = wait_policy
        self.slice_size = slice_size or get_scale().slice_size(workload.nthreads)
        self.simpoint = simpoint or SimPointOptions()
        self.record_seed = record_seed
        self._pinball: Optional[Pinball] = None
        self._profile: Optional[NaiveProfile] = None
        self._selection: Optional[SimPointSelection] = None

    def record(self) -> Pinball:
        if self._pinball is None:
            w = self.workload
            self._pinball, _ = record_execution(
                w.program, w.thread_program, w.omp, w.nthreads,
                wait_policy=self.wait_policy, seed=self.record_seed,
            )
        return self._pinball

    def profile(self) -> NaiveProfile:
        if self._profile is None:
            slicer = _RawSlicer(self.workload.program.num_blocks, self.slice_size)
            ConstrainedReplayer(
                self.workload.program, self.record(), observers=(slicer,)
            ).run()
            self._profile = NaiveProfile(
                slices=slicer.slices,
                total_instructions=slicer.slices[-1].end_instr,
            )
        return self._profile

    def select(self) -> SimPointSelection:
        if self._selection is None:
            profile = self.profile()
            self._selection = select_simpoints(
                profile.bbv_matrix(), profile.counts(), self.simpoint
            )
        return self._selection

    def regions(self) -> List[RegionOfInterest]:
        profile = self.profile()
        rois = [
            RegionOfInterest(
                region_id=c.representative,
                start_instr=(
                    None
                    if profile.slices[c.representative].start_instr == 0
                    else profile.slices[c.representative].start_instr
                ),
                end_instr=profile.slices[c.representative].end_instr,
            )
            for c in self.select().clusters
        ]
        rois.sort(key=lambda r: r.region_id)
        return rois

    def run(self, simulate_full: bool = True):
        """Returns ``(predicted, actual)`` whole-program metrics."""
        selection = self.select()
        sim = MultiCoreSimulator(
            self.workload.program, self.system, self.workload.omp
        )
        region_results = sim.run_binary(
            self.workload.thread_program,
            self.workload.nthreads,
            self.wait_policy,
            regions=self.regions(),
            clip_at_end=True,
        )
        predicted = extrapolate_metrics(
            region_results, selection.clusters, allow_missing=True
        )
        actual = None
        if simulate_full:
            sim2 = MultiCoreSimulator(
                self.workload.program, self.system, self.workload.omp
            )
            actual = sim2.run_binary(
                self.workload.thread_program,
                self.workload.nthreads,
                self.wait_policy,
            )[0].metrics
        return predicted, actual
