"""Time-based sampling (ESESC/COTSon style) and Fig. 1's cost estimates.

Periodic sampling alternates short detailed windows with fast-forwarding.
Accuracy is decent, but the *whole application* must still be traversed
(functionally or faster), so simulation time scales with application length
— the paper's Fig. 1 argument for why time-based sampling cannot touch
SPEC CPU2017 ref inputs (~a year of simulation), while LoopPoint's cost
scales with application *diversity*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import GAINESTOWN_8CORE, SystemConfig
from ..errors import SimulationError
from ..policy import WaitPolicy
from ..timing.mcsim import MultiCoreSimulator, RegionOfInterest
from ..timing.metrics import SimMetrics
from ..workloads.base import Workload


@dataclass
class TimeSamplingResult:
    """Outcome of a periodic-sampling run."""

    predicted: SimMetrics
    actual: Optional[SimMetrics]
    num_samples: int
    detailed_instructions: int
    total_instructions: int

    @property
    def runtime_error_pct(self) -> Optional[float]:
        if self.actual is None:
            return None
        return (
            100.0
            * abs(self.predicted.cycles - self.actual.cycles)
            / self.actual.cycles
        )

    @property
    def detail_fraction(self) -> float:
        return self.detailed_instructions / max(1, self.total_instructions)


def run_time_sampling(
    workload: Workload,
    wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
    system: Optional[SystemConfig] = None,
    detail_instructions: int = 10_000,
    period_instructions: int = 100_000,
    simulate_full: bool = True,
) -> TimeSamplingResult:
    """Sample ``detail_instructions`` every ``period_instructions``.

    Runtime is extrapolated per sample window: each detailed window's cycles
    are scaled by ``period / detail`` — time-based extrapolation over the
    fast-forwarded gaps.
    """
    if not 0 < detail_instructions <= period_instructions:
        raise SimulationError(
            "need 0 < detail_instructions <= period_instructions"
        )
    system = system or GAINESTOWN_8CORE.with_cores(
        max(GAINESTOWN_8CORE.num_cores, workload.nthreads)
    )
    approx_total = workload.approximate_instructions()
    regions = []
    start = 0
    rid = 0
    while start < approx_total:
        regions.append(
            RegionOfInterest(
                region_id=rid,
                start_instr=start if start else None,
                end_instr=start + detail_instructions,
            )
        )
        rid += 1
        start += period_instructions
    sim = MultiCoreSimulator(workload.program, system, workload.omp)
    results = sim.run_binary(
        workload.thread_program, workload.nthreads, wait_policy,
        regions=regions,
    )
    scale = period_instructions / detail_instructions
    predicted = SimMetrics()
    detailed_instr = 0
    for r in results:
        predicted = predicted.plus(r.metrics.scaled(scale))
        detailed_instr += r.metrics.instructions

    actual = None
    total_instr = 0
    if simulate_full:
        sim2 = MultiCoreSimulator(workload.program, system, workload.omp)
        full = sim2.run_binary(
            workload.thread_program, workload.nthreads, wait_policy
        )[0]
        actual = full.metrics
        total_instr = full.metrics.instructions
    return TimeSamplingResult(
        predicted=predicted,
        actual=actual,
        num_samples=len(results),
        detailed_instructions=detailed_instr,
        total_instructions=total_instr or approx_total,
    )


#: Fig. 1 cost model: detailed simulation speed assumed in the paper.
DETAILED_KIPS = 100.0
#: Functional fast-forward / profiling speed (instructions per second).
FUNCTIONAL_MIPS = 10.0


def estimate_evaluation_days(
    total_instructions: float,
    method: str,
    representative_instructions: Optional[float] = None,
    largest_region_instructions: Optional[float] = None,
    detailed_kips: float = DETAILED_KIPS,
    functional_mips: float = FUNCTIONAL_MIPS,
) -> float:
    """Days to evaluate one benchmark under a methodology (Fig. 1).

    ``full``: simulate everything in detail.  ``time-based``: detailed
    sampling plus functional traversal of the rest.  ``barrierpoint`` /
    ``looppoint``: detailed simulation of the representatives only, in
    parallel (the longest region bounds time-to-results), plus a one-time
    functional profiling pass.
    """
    det = detailed_kips * 1e3  # instructions per second, detailed
    fun = functional_mips * 1e6
    if method == "full":
        seconds = total_instructions / det
    elif method == "time-based":
        sampled = total_instructions * 0.10
        seconds = sampled / det + (total_instructions - sampled) / fun
    elif method in ("barrierpoint", "looppoint"):
        if largest_region_instructions is None:
            raise SimulationError(f"{method} estimate needs the largest region")
        seconds = largest_region_instructions / det + total_instructions / fun
    else:
        raise SimulationError(f"unknown methodology {method!r}")
    return seconds / 86_400.0
