"""BarrierPoint (Carlson et al., ISPASS 2014) over our substrate.

The unit of work is the inter-barrier region: profiling cuts at every
barrier release (explicit ``omp barrier`` and the implicit barriers that end
worksharing constructs), fingerprints each region with filtered per-thread
BBVs, clusters, and simulates representatives delimited by *barrier
ordinals* — which, like loop markers, are stable across runs.

Its failure modes, reproduced here (Fig. 9 of the paper): speedup is bounded
by the largest inter-barrier region, so 638.imagick_s.1-like applications
(one giant region) gain nothing, and 657.xz_s-like applications (no barriers
until the final join) cannot be sampled at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..clustering.simpoint import (
    SimPointOptions,
    SimPointSelection,
    select_simpoints,
)
from ..config import GAINESTOWN_8CORE, SystemConfig
from ..core.extrapolation import extrapolate_metrics
from ..errors import ProfilingError
from ..exec_engine.events import SYNC_BARRIER
from ..exec_engine.observers import Observer
from ..pinplay.pinball import Pinball
from ..pinplay.recorder import record_execution
from ..pinplay.replayer import ConstrainedReplayer
from ..policy import WaitPolicy
from ..profiling.bbv import BBVCollector
from ..profiling.filters import FilterPolicy
from ..timing.mcsim import (
    MultiCoreSimulator,
    RegionOfInterest,
)
from ..workloads.base import Workload


@dataclass
class BarrierRegion:
    """One inter-barrier region: between releases ``start`` and ``end``."""

    index: int
    start_barrier: int  # 0 = program start
    end_barrier: Optional[int]  # None = program end
    bbv: np.ndarray
    filtered_instructions: int
    total_instructions: int


@dataclass
class BarrierProfile:
    regions: List[BarrierRegion]
    total_instructions: int
    filtered_instructions: int

    def bbv_matrix(self) -> np.ndarray:
        return np.vstack([r.bbv for r in self.regions])

    def counts(self) -> np.ndarray:
        return np.array(
            [r.filtered_instructions for r in self.regions], dtype=np.float64
        )

    @property
    def largest_region_instructions(self) -> int:
        return max(r.filtered_instructions for r in self.regions)


class _BarrierSlicer(Observer):
    """Cuts regions at completed barrier releases during a replay."""

    def __init__(
        self, nthreads: int, nblocks: int,
        filter_policy: Optional[FilterPolicy] = None,
    ) -> None:
        self.nthreads = nthreads
        self.bbv = BBVCollector(nthreads, nblocks, filter_policy)
        self.regions: List[BarrierRegion] = []
        self._releases_seen = 0
        self._release_parts = 0
        self._region_start = 0
        self._total = 0
        self._filtered = 0
        self._region_total = 0
        self._region_filtered = 0

    def on_block(self, tid, block, repeat, start_index) -> None:
        n = block.n_instr * repeat
        self._total += n
        self._region_total += n
        if not block.image.is_library:
            self._filtered += n
            self._region_filtered += n
        self.bbv.add(tid, block, repeat)

    def on_sync(self, tid, kind, obj_id, response, gseq) -> None:
        if kind != SYNC_BARRIER + "_rel":
            return
        self._release_parts += 1
        if self._release_parts < self.nthreads:
            return
        self._release_parts = 0
        self._releases_seen += 1
        self._close(end=self._releases_seen)

    def on_finish(self) -> None:
        if self._region_total > 0 or not self.regions:
            self._close(end=None)

    def _close(self, end: Optional[int]) -> None:
        self.regions.append(
            BarrierRegion(
                index=len(self.regions),
                start_barrier=self._region_start,
                end_barrier=end,
                bbv=self.bbv.emit(),
                filtered_instructions=self._region_filtered,
                total_instructions=self._region_total,
            )
        )
        self._region_start = end if end is not None else -1
        self._region_total = 0
        self._region_filtered = 0


class BarrierPointPipeline:
    """Profile at barriers, cluster, simulate, extrapolate."""

    def __init__(
        self,
        workload: Workload,
        system: Optional[SystemConfig] = None,
        wait_policy: WaitPolicy = WaitPolicy.PASSIVE,
        simpoint: Optional[SimPointOptions] = None,
        record_seed: int = 0,
    ) -> None:
        self.workload = workload
        self.system = system or GAINESTOWN_8CORE.with_cores(
            max(GAINESTOWN_8CORE.num_cores, workload.nthreads)
        )
        self.wait_policy = wait_policy
        self.simpoint = simpoint or SimPointOptions()
        self.record_seed = record_seed
        self._pinball: Optional[Pinball] = None
        self._profile: Optional[BarrierProfile] = None
        self._selection: Optional[SimPointSelection] = None

    def record(self) -> Pinball:
        if self._pinball is None:
            w = self.workload
            self._pinball, _ = record_execution(
                w.program, w.thread_program, w.omp, w.nthreads,
                wait_policy=self.wait_policy, seed=self.record_seed,
            )
        return self._pinball

    def profile(self) -> BarrierProfile:
        if self._profile is None:
            w = self.workload
            slicer = _BarrierSlicer(w.nthreads, w.program.num_blocks)
            ConstrainedReplayer(
                w.program, self.record(), observers=(slicer,)
            ).run()
            regions = [r for r in slicer.regions if r.filtered_instructions > 0]
            if not regions:
                raise ProfilingError(
                    f"{w.name}: no non-empty inter-barrier regions"
                )
            for i, region in enumerate(regions):
                region.index = i
            self._profile = BarrierProfile(
                regions=regions,
                total_instructions=slicer._total,
                filtered_instructions=slicer._filtered,
            )
        return self._profile

    def select(self) -> SimPointSelection:
        if self._selection is None:
            profile = self.profile()
            self._selection = select_simpoints(
                profile.bbv_matrix(), profile.counts(), self.simpoint
            )
        return self._selection

    def regions(self) -> List[RegionOfInterest]:
        profile = self.profile()
        rois = []
        for c in self.select().clusters:
            region = profile.regions[c.representative]
            rois.append(
                RegionOfInterest(
                    region_id=c.representative,
                    start_barrier=(
                        region.start_barrier if region.start_barrier > 0 else None
                    ),
                    end_barrier=region.end_barrier,
                )
            )
        rois.sort(key=lambda r: r.region_id)
        return rois

    def theoretical_speedups(self) -> tuple:
        """(serial, parallel) theoretical speedups of the selection."""
        profile = self.profile()
        reps = [
            profile.regions[c.representative].filtered_instructions
            for c in self.select().clusters
        ]
        total = float(profile.filtered_instructions)
        return total / sum(reps), total / max(reps)

    def run(self, simulate_full: bool = True):
        """Returns ``(predicted, actual)`` whole-program metrics."""
        selection = self.select()
        sim = MultiCoreSimulator(
            self.workload.program, self.system, self.workload.omp
        )
        region_results = sim.run_binary(
            self.workload.thread_program,
            self.workload.nthreads,
            self.wait_policy,
            regions=self.regions(),
        )
        predicted = extrapolate_metrics(region_results, selection.clusters)
        actual = None
        if simulate_full:
            sim2 = MultiCoreSimulator(
                self.workload.program, self.system, self.workload.omp
            )
            actual = sim2.run_binary(
                self.workload.thread_program,
                self.workload.nthreads,
                self.wait_policy,
            )[0].metrics
        return predicted, actual
