"""Structured failure accounting and the graceful-degradation policies.

When a region still fails after the executor's retries *and* its serial
fallback, the pipeline consults a :class:`DegradePolicy`:

* ``FAIL`` — raise, the pre-resilience behavior;
* ``FALLBACK`` — in checkpoint-driven (constrained) mode, re-simulate the
  region binary-driven in the parent (the paper's other simulation mode;
  different distortions, but a real measurement of the same region);
* ``DROP`` — discard the region and renormalize the remaining clusters'
  multipliers so the extrapolation stays an unbiased estimate over the
  retained instruction mass.

Every decision is captured as a :class:`FailureRecord` and rolled up into
the :class:`RunHealth` block attached to every
:class:`~repro.core.looppoint.LoopPointResult` — a run is never silently
degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Set, TYPE_CHECKING, Tuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..clustering.simpoint import ClusterInfo


class DegradePolicy(str, Enum):
    """What to do with a region that failed retries and serial fallback."""

    FAIL = "fail"
    FALLBACK = "fallback"
    DROP = "drop"


@dataclass(frozen=True)
class FailureRecord:
    """One failure the pipeline observed and what it did about it."""

    #: Pipeline stage ("record", "profile", "select", "extract",
    #: "simulate", "manifest").
    stage: str
    #: What went wrong, e.g. "ReplayDivergenceError: ..." or a fault site.
    error: str
    #: The action taken: "retried", "fallback", "dropped", "recomputed",
    #: or "raised".
    action: str
    #: Region the failure belongs to, when stage == "simulate".
    region_id: Optional[int] = None
    #: How many attempts had been spent when the action was taken.
    attempts: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "error": self.error,
            "action": self.action,
            "region_id": self.region_id,
            "attempts": self.attempts,
        }


@dataclass
class RunHealth:
    """The ``result.health`` block: what failed, what it cost, what remains."""

    failures: List[FailureRecord] = field(default_factory=list)
    #: Retries taken — pool re-submissions plus stage-level retries.
    retries: int = 0
    #: Jobs that exhausted the pool retry budget and re-ran in the parent.
    serial_fallbacks: int = 0
    #: Regions re-simulated binary-driven after constrained simulation failed.
    fallback_regions: List[int] = field(default_factory=list)
    #: Regions dropped outright; their mass was redistributed.
    dropped_regions: List[int] = field(default_factory=list)
    #: Stages restored from the manifest + artifact cache by ``--resume``.
    resumed_stages: List[str] = field(default_factory=list)
    #: Fraction of instruction mass still represented after drops (1.0 when
    #: nothing was dropped).
    retained_coverage: float = 1.0
    #: Artifacts the size-budgeted shared store LRU-evicted during this
    #: run.  Evictions are capacity management, not failures — they never
    #: mark a run degraded — but a run that evicted may recompute stages a
    #: bigger budget would have reused, which is worth surfacing.
    cache_evictions: int = 0

    @property
    def degraded(self) -> bool:
        """True when the result is *not* the one a clean run would produce."""
        return bool(self.fallback_regions or self.dropped_regions)

    @property
    def ok(self) -> bool:
        """True for a clean, uneventful run: no retries, no failures, and
        nothing restored by resume (resume is worth surfacing, not wrong)."""
        return (
            not self.failures
            and self.retries == 0
            and self.serial_fallbacks == 0
            and not self.resumed_stages
            and not self.degraded
        )

    def record(self, failure: FailureRecord) -> None:
        self.failures.append(failure)

    def summary(self) -> str:
        """One grep-able line, mirroring the cache ``stats_line`` idiom."""
        parts = [
            f"retries={self.retries}",
            f"serial_fallbacks={self.serial_fallbacks}",
            f"failures={len(self.failures)}",
        ]
        if self.fallback_regions:
            parts.append(f"fallback_regions={sorted(self.fallback_regions)}")
        if self.dropped_regions:
            parts.append(f"dropped_regions={sorted(self.dropped_regions)}")
        if self.resumed_stages:
            parts.append(f"resumed={','.join(self.resumed_stages)}")
        if self.cache_evictions:
            parts.append(f"cache_evictions={self.cache_evictions}")
        parts.append(f"coverage={self.retained_coverage * 100:.1f}%")
        parts.append("degraded" if self.degraded else "intact")
        return " ".join(parts)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "failures": [f.as_dict() for f in self.failures],
            "retries": self.retries,
            "serial_fallbacks": self.serial_fallbacks,
            "fallback_regions": sorted(self.fallback_regions),
            "dropped_regions": sorted(self.dropped_regions),
            "resumed_stages": list(self.resumed_stages),
            "retained_coverage": self.retained_coverage,
            "cache_evictions": self.cache_evictions,
            "degraded": self.degraded,
        }


def renormalize_clusters(
    clusters: Sequence["ClusterInfo"], dropped: Set[int]
) -> Tuple[List["ClusterInfo"], float]:
    """Remove clusters whose representative was dropped; rescale the rest.

    Extrapolation is ``sum_i metrics_i * multiplier_i`` over the surviving
    representatives; scaling every surviving multiplier by
    ``total_mass / retained_mass`` redistributes the dropped clusters' mass
    proportionally, keeping the prediction an estimate of the *whole*
    program rather than of the surviving fraction.  Returns the new cluster
    list and the retained-coverage fraction.
    """
    kept = [c for c in clusters if c.representative not in dropped]
    if not kept:
        raise SimulationError(
            f"every region failed ({sorted(dropped)}); nothing left to "
            f"extrapolate from"
        )
    total = sum(c.instruction_mass for c in clusters)
    retained = sum(c.instruction_mass for c in kept)
    if total <= 0 or retained <= 0:
        raise SimulationError("cluster instruction mass is not positive")
    factor = total / retained
    rescaled = [replace(c, multiplier=c.multiplier * factor) for c in kept]
    return rescaled, retained / total
