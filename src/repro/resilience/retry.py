"""Retry pacing: exponential backoff with seeded, deterministic jitter.

The executor used to re-submit failed jobs immediately, which turns a
transiently sick pool (an OOM-killed worker, a loaded host) into a tight
crash loop.  :class:`RetryPolicy` spaces attempts exponentially and jitters
each delay by a hash of ``(seed, key, attempt)`` — the same run always waits
the same amounts, so wall-clock-sensitive tests and CI stay reproducible
while concurrent retries still decorrelate.

A policy may also carry a **wall-clock deadline** (``deadline_s``).
Attempt counting alone bounds how many times a loop retries, but not how
long it spends doing so — a wait loop polling a lock whose holder is dead
would otherwise spin forever at ``max_delay_s`` pacing.  The deadline is
measured by the *caller* (who knows when the whole operation started) via
:meth:`expired` / :meth:`clamped_delay`; the policy itself stays a frozen
pure-data schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Delay schedule for attempt ``n`` (1-based) of a retried operation."""

    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    #: Jitter amplitude as a fraction of the raw delay: the final delay is
    #: ``raw * (1 + jitter * u)`` with ``u`` uniform in [-1, 1).
    jitter: float = 0.25
    seed: int = 0
    #: Total wall-clock budget in seconds for the retried operation as a
    #: whole (``None`` = unbounded, the historical behavior).  Enforced by
    #: the caller through :meth:`expired`/:meth:`clamped_delay` — attempt
    #: bounds cap *how many* retries, the deadline caps *how long*.
    deadline_s: Optional[float] = None

    def delay(self, attempt: int, key: object = "") -> float:
        """Seconds to wait before attempt ``attempt`` (first retry = 1)."""
        if attempt < 1 or self.base_delay_s <= 0:
            return 0.0
        raw = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )
        blob = f"{self.seed}:{key}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(blob).digest()
        u = int.from_bytes(digest[:8], "big") / 2**63 - 1.0  # [-1, 1)
        return max(0.0, raw * (1.0 + self.jitter * u))

    # -- wall-clock budget ---------------------------------------------------

    def remaining(self, elapsed_s: float) -> Optional[float]:
        """Wall-clock budget left after ``elapsed_s``; ``None`` = unbounded."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - elapsed_s)

    def expired(self, elapsed_s: float) -> bool:
        """Whether the operation's total wall-clock budget is spent."""
        return self.deadline_s is not None and elapsed_s >= self.deadline_s

    def clamped_delay(
        self, attempt: int, key: object = "", elapsed_s: float = 0.0
    ) -> float:
        """:meth:`delay`, clipped so the sleep never overshoots the deadline.

        Returns ``0.0`` once the deadline is spent — the caller should then
        check :meth:`expired` and give up rather than keep polling.
        """
        raw = self.delay(attempt, key)
        left = self.remaining(elapsed_s)
        if left is None:
            return raw
        return min(raw, left)
