"""Retry pacing: exponential backoff with seeded, deterministic jitter.

The executor used to re-submit failed jobs immediately, which turns a
transiently sick pool (an OOM-killed worker, a loaded host) into a tight
crash loop.  :class:`RetryPolicy` spaces attempts exponentially and jitters
each delay by a hash of ``(seed, key, attempt)`` — the same run always waits
the same amounts, so wall-clock-sensitive tests and CI stay reproducible
while concurrent retries still decorrelate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Delay schedule for attempt ``n`` (1-based) of a retried operation."""

    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    #: Jitter amplitude as a fraction of the raw delay: the final delay is
    #: ``raw * (1 + jitter * u)`` with ``u`` uniform in [-1, 1).
    jitter: float = 0.25
    seed: int = 0

    def delay(self, attempt: int, key: object = "") -> float:
        """Seconds to wait before attempt ``attempt`` (first retry = 1)."""
        if attempt < 1 or self.base_delay_s <= 0:
            return 0.0
        raw = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )
        blob = f"{self.seed}:{key}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(blob).digest()
        u = int.from_bytes(digest[:8], "big") / 2**63 - 1.0  # [-1, 1)
        return max(0.0, raw * (1.0 + self.jitter * u))
