"""The run manifest: an append-only journal that makes runs resumable.

Each pipeline run appends JSON lines to a manifest file — a ``run-start``
marker carrying every stage's cache key, then ``begin``/``done``/``fail``
events per stage.  Appends are atomic at the line level (single ``write``
of one ``\\n``-terminated line, flushed and fsynced), so a run killed at
any instant leaves at worst one truncated trailing line, which the loader
skips and reports rather than chokes on.

Resume reads the segment after the last ``run-start``, checks each
completed stage's recorded key against the key the *current* options would
produce (a mismatch raises :class:`~repro.errors.ResumeError` — resuming
under different options would silently mix artifacts), and then lets the
pipeline run normally: completed stages load from the content-addressed
artifact cache, everything after the kill point recomputes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..errors import ResumeError

#: Journal event names.
RUN_START = "run-start"
RESUME = "resume"
BEGIN = "begin"
DONE = "done"
FAIL = "fail"
RUN_COMPLETE = "run-complete"


class RunManifest:
    """Atomically-appended JSON-lines journal of one run's stage progress."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # -- writing -------------------------------------------------------------

    def append(self, event: Dict[str, Any]) -> None:
        """Append one event as a single fsynced line."""
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def start_run(self, stage_keys: Dict[str, str]) -> None:
        self.append({"event": RUN_START, "keys": stage_keys})

    def mark_resume(self, stages: List[str]) -> None:
        self.append({"event": RESUME, "stages": sorted(stages)})

    def begin(self, stage: str, key: str) -> None:
        self.append({"event": BEGIN, "stage": stage, "key": key})

    def done(self, stage: str, key: str, source: str = "computed") -> None:
        """``source`` is ``"computed"`` or ``"cache"``."""
        self.append({"event": DONE, "stage": stage, "key": key,
                     "source": source})

    def fail(self, stage: str, key: str, error: str) -> None:
        self.append({"event": FAIL, "stage": stage, "key": key,
                     "error": error})

    def complete_run(self, summary: Dict[str, Any]) -> None:
        self.append({"event": RUN_COMPLETE, **summary})

    # -- reading -------------------------------------------------------------

    @staticmethod
    def load(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], int]:
        """Parse the journal; returns ``(events, corrupt_line_count)``.

        Lines that fail to decode (a write cut mid-line by a kill) are
        skipped and counted, never fatal.
        """
        events: List[Dict[str, Any]] = []
        corrupt = 0
        try:
            raw = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ResumeError(f"cannot read manifest {path}: {exc}") from exc
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            if isinstance(event, dict) and "event" in event:
                events.append(event)
            else:
                corrupt += 1
        return events, corrupt

    @staticmethod
    def last_run(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """The segment belonging to the most recent ``run-start``."""
        start = 0
        for index, event in enumerate(events):
            if event.get("event") == RUN_START:
                start = index
        return events[start:]

    @staticmethod
    def completed_stages(events: List[Dict[str, Any]]) -> Dict[str, str]:
        """Map of stage name to cache key for every ``done`` event seen."""
        done: Dict[str, str] = {}
        for event in events:
            if event.get("event") == DONE and "stage" in event:
                done[str(event["stage"])] = str(event.get("key", ""))
        return done

    def read_completed(self) -> Tuple[Dict[str, str], int]:
        """Completed stages of the last run in this manifest file.

        Raises :class:`ResumeError` when the file does not exist.
        """
        if not self.path.exists():
            raise ResumeError(
                f"cannot resume: no manifest at {self.path} — was the "
                f"original run started with a manifest path?"
            )
        events, corrupt = self.load(self.path)
        return self.completed_stages(self.last_run(events)), corrupt
