"""Deterministic fault injection at the pipeline's failure seams.

Every failure path the pipeline claims to survive — a worker crashing or
hanging mid-region, a truncated cache artifact, replay divergence during
profiling, region-pinball extraction dying, K-means refusing to converge —
is exercisable on demand through a seeded :class:`FaultPlan`.  The plan is
pure data (picklable, JSON round-trippable) and every fire/no-fire decision
is a deterministic function of ``(seed, site, key, occurrence)``, so a
failing resilience test replays exactly, in CI and on a laptop, serial or
fanned out.

Seams call :func:`maybe_inject` (raise-style sites) or :func:`should_fire`
(behavioral sites like cache corruption, where the seam itself performs the
damage).  Both are near-free no-ops unless a plan is installed via
:func:`install_fault_plan` / :func:`fault_scope` — production runs carry a
single ``is None`` check per seam.

Site catalogue (the ``site`` strings a :class:`FaultSpec` can name):

========================  ====================================================
``worker.crash``          pool worker dies abruptly (``os._exit``) — only
                          ever fired inside a pool worker process
``worker.hang``           pool worker sleeps ``hang_s`` seconds (exceeding
                          the job timeout turns this into a hung worker)
``worker.error``          pool worker raises :class:`FaultInjectionError`
``job.error``             region simulation raises wherever it runs —
                          including the parent's serial fallback — which is
                          how the degradation policies are exercised
``cache.corrupt``         a just-stored cache artifact is truncated
                          (``mode="truncate"``) or overwritten with garbage
                          (``mode="garbage"``)
``profile.divergence``    profiling raises :class:`ReplayDivergenceError`
``region.extract``        region-pinball extraction raises ``RegionError``
``kmeans.diverge``        K-means raises ``ClusteringError`` (non-convergence)
``pipeline.abort``        the process dies between pipeline stages —
                          ``mode="kill"`` sends SIGKILL to itself (the
                          resume test's "power cut"), otherwise ``os._exit``
``store.torn_write``      the artifact store's temp file is damaged after
                          the payload fsync but before publication —
                          ``os.replace`` then publishes a torn file whose
                          checksum sidecar no longer matches
                          (``mode="truncate"``/``"garbage"``)
``store.crash_replace``   the writing process dies (``os._exit``) between
                          fsyncing the temp file and the ``os.replace``
                          that publishes it — the classic crash window
                          that leaves a ``.tmp-*`` orphan behind
``store.lock_death``      the process dies (``os._exit``) while holding a
                          shared-store key lock — the kernel releases the
                          ``flock`` and waiters must recover and compute
========================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import (
    ClusteringError,
    FaultInjectionError,
    RegionError,
    ReplayDivergenceError,
)

WORKER_CRASH = "worker.crash"
WORKER_HANG = "worker.hang"
WORKER_ERROR = "worker.error"
JOB_ERROR = "job.error"
CACHE_CORRUPT = "cache.corrupt"
PROFILE_DIVERGENCE = "profile.divergence"
REGION_EXTRACT = "region.extract"
KMEANS_DIVERGE = "kmeans.diverge"
PIPELINE_ABORT = "pipeline.abort"
STORE_TORN_WRITE = "store.torn_write"
STORE_CRASH_REPLACE = "store.crash_replace"
STORE_LOCK_DEATH = "store.lock_death"

#: Every site a spec may name, with the ``mode`` values it understands
#: (the empty string is the site's default behavior).
SITES: Dict[str, Tuple[str, ...]] = {
    WORKER_CRASH: ("",),
    WORKER_HANG: ("",),
    WORKER_ERROR: ("",),
    JOB_ERROR: ("",),
    CACHE_CORRUPT: ("", "truncate", "garbage"),
    PROFILE_DIVERGENCE: ("",),
    REGION_EXTRACT: ("",),
    KMEANS_DIVERGE: ("",),
    PIPELINE_ABORT: ("", "exit", "kill"),
    STORE_TORN_WRITE: ("", "truncate", "garbage"),
    STORE_CRASH_REPLACE: ("",),
    STORE_LOCK_DEATH: ("",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, how often, and in what flavour.

    ``probability`` is evaluated deterministically (a hash of the plan seed,
    site, key, and per-key occurrence number stands in for a coin flip), so
    a 0.3-probability spec fires for the *same* 30% of keys on every run.
    ``match`` restricts the spec to keys containing the substring;
    ``max_fires`` bounds total fires (process-local count; -1 = unbounded).
    """

    site: str
    probability: float = 1.0
    match: str = ""
    mode: str = ""
    max_fires: int = -1
    #: Sleep length of a ``worker.hang`` fire.
    hang_s: float = 30.0


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules.

    The plan carries two process-local counters (per-spec fires, per
    ``(site, key)`` calls) so retries of the same seam see a fresh
    occurrence number — a ``max_fires=1`` spec fails a stage exactly once
    and lets the retry through, deterministically.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()
    _fires: Counter = field(default_factory=Counter, repr=False, compare=False)
    _calls: Counter = field(default_factory=Counter, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.faults = tuple(self.faults)

    # -- decisions -----------------------------------------------------------

    def should_fire(self, site: str, key: str) -> Optional[FaultSpec]:
        """The first matching spec that fires for this call, or ``None``."""
        occurrence = self._calls[(site, key)]
        self._calls[(site, key)] += 1
        for index, spec in enumerate(self.faults):
            if spec.site != site:
                continue
            if spec.match and spec.match not in key:
                continue
            if 0 <= spec.max_fires <= self._fires[index]:
                continue
            if _fraction(self.seed, index, site, key, occurrence) < spec.probability:
                self._fires[index] += 1
                return spec
        return None

    # -- validation ----------------------------------------------------------

    def iter_problems(self) -> Iterator[Tuple[str, str, str]]:
        """Yield ``(code, location, message)`` for every malformed spec.

        Codes: ``unknown-site``, ``bad-probability``, ``bad-hang``,
        ``bad-mode``.  An empty iteration means the plan is runnable.
        """
        for index, spec in enumerate(self.faults):
            where = f"faults[{index}] ({spec.site})"
            if spec.site not in SITES:
                yield ("unknown-site", where,
                       f"unknown injection site {spec.site!r}; known sites: "
                       f"{', '.join(sorted(SITES))}")
                continue
            if not 0.0 <= spec.probability <= 1.0:
                yield ("bad-probability", where,
                       f"probability {spec.probability} outside [0, 1]")
            if spec.hang_s < 0:
                yield ("bad-hang", where, f"hang_s {spec.hang_s} is negative")
            if spec.mode not in SITES[spec.site]:
                yield ("bad-mode", where,
                       f"mode {spec.mode!r} invalid for site {spec.site!r}; "
                       f"allowed: {SITES[spec.site]}")

    def validate(self) -> None:
        """Raise :class:`FaultInjectionError` on the first malformed spec."""
        for _code, where, message in self.iter_problems():
            raise FaultInjectionError(f"invalid fault plan: {where}: {message}")

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [
                {
                    "site": s.site,
                    "probability": s.probability,
                    "match": s.match,
                    "mode": s.mode,
                    "max_fires": s.max_fires,
                    "hang_s": s.hang_s,
                }
                for s in self.faults
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict) or not isinstance(data.get("faults", []), list):
            raise FaultInjectionError(
                "fault plan must be an object with a 'faults' list"
            )
        known = {f.name for f in FaultSpec.__dataclass_fields__.values()}
        specs: List[FaultSpec] = []
        for raw in data.get("faults", []):
            if not isinstance(raw, dict) or "site" not in raw:
                raise FaultInjectionError(
                    f"each fault spec needs at least a 'site' field, got {raw!r}"
                )
            unknown = set(raw) - known
            if unknown:
                raise FaultInjectionError(
                    f"fault spec has unknown field(s) {sorted(unknown)}"
                )
            specs.append(FaultSpec(**raw))
        return cls(seed=int(data.get("seed", 0)), faults=tuple(specs))

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise FaultInjectionError(
                f"cannot read fault plan {path!r}: {exc}"
            ) from exc
        return cls.from_dict(data)


def _fraction(seed: int, index: int, site: str, key: str, occurrence: int) -> float:
    """A uniform-looking value in [0, 1), pure in its inputs."""
    blob = f"{seed}:{index}:{site}:{key}:{occurrence}".encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


# -- the installed plan -------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process's active plan (``None`` disables)."""
    global _ACTIVE
    if plan is not None:
        plan.validate()
    _ACTIVE = plan


def clear_fault_plan() -> None:
    install_fault_plan(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def fault_scope(plan: Optional[FaultPlan]):
    """Install ``plan`` for the duration of the block (nestable).

    ``None`` leaves whatever is installed untouched, so pipeline internals
    can wrap themselves unconditionally.
    """
    if plan is None:
        yield
        return
    global _ACTIVE
    previous = _ACTIVE
    install_fault_plan(plan)
    try:
        yield
    finally:
        _ACTIVE = previous


def should_fire(site: str, key: str) -> Optional[FaultSpec]:
    """Consult the active plan; ``None`` when no plan or no matching fire."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.should_fire(site, key)


def maybe_inject(site: str, key: str) -> None:
    """Fire the active plan's action for ``site`` (raise/sleep/die), if any."""
    spec = should_fire(site, key)
    if spec is not None:
        perform(spec, site, key)


def perform(spec: FaultSpec, site: str, key: str) -> None:
    """Carry out one fired spec's action."""
    if site == WORKER_CRASH:
        os._exit(3)
    if site == WORKER_HANG:
        time.sleep(spec.hang_s)
        return
    if site in (WORKER_ERROR, JOB_ERROR, CACHE_CORRUPT):
        raise FaultInjectionError(f"injected fault at {site} ({key})")
    if site == PROFILE_DIVERGENCE:
        raise ReplayDivergenceError(
            f"injected replay divergence during profiling ({key})"
        )
    if site == REGION_EXTRACT:
        raise RegionError(
            f"injected region-pinball extraction failure ({key})"
        )
    if site == KMEANS_DIVERGE:
        raise ClusteringError(f"injected k-means non-convergence ({key})")
    if site == PIPELINE_ABORT:
        if spec.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(137)
    if site == STORE_TORN_WRITE:
        # Behavioral seam: the store damages its own temp file via
        # should_fire.  A perform() call means a spec was misrouted here.
        raise FaultInjectionError(f"injected fault at {site} ({key})")
    if site == STORE_CRASH_REPLACE:
        os._exit(5)
    if site == STORE_LOCK_DEATH:
        os._exit(6)
    raise FaultInjectionError(f"injected fault at unknown site {site} ({key})")


def perform_worker_faults(plan: FaultPlan, job_id: int, attempt: int) -> None:
    """Worker-process entry seam: crash, hang, then error, in that order.

    Keys carry the attempt number, so a spec with ``match=":attempt:0"``
    fails every job's first pool attempt and lets every retry through —
    the executor's whole recovery ladder becomes deterministic to test.
    """
    key = f"job:{job_id}:attempt:{attempt}"
    for site in (WORKER_CRASH, WORKER_HANG, WORKER_ERROR):
        spec = plan.should_fire(site, key)
        if spec is not None:
            perform(spec, site, key)
