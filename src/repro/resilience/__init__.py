"""Resilience layer: fault injection, retry pacing, run manifests, health.

See :mod:`repro.resilience.faults` for the injection-site catalogue,
:mod:`repro.resilience.manifest` for the resumable run journal, and
:mod:`repro.resilience.health` for degradation policies and the
``result.health`` block.
"""

from .faults import (
    CACHE_CORRUPT,
    JOB_ERROR,
    KMEANS_DIVERGE,
    PIPELINE_ABORT,
    PROFILE_DIVERGENCE,
    REGION_EXTRACT,
    SITES,
    STORE_CRASH_REPLACE,
    STORE_LOCK_DEATH,
    STORE_TORN_WRITE,
    WORKER_CRASH,
    WORKER_ERROR,
    WORKER_HANG,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_fault_plan,
    fault_scope,
    install_fault_plan,
    maybe_inject,
    perform_worker_faults,
    should_fire,
)
from .health import (
    DegradePolicy,
    FailureRecord,
    RunHealth,
    renormalize_clusters,
)
from .manifest import RunManifest
from .retry import RetryPolicy

__all__ = [
    "CACHE_CORRUPT",
    "JOB_ERROR",
    "KMEANS_DIVERGE",
    "PIPELINE_ABORT",
    "PROFILE_DIVERGENCE",
    "REGION_EXTRACT",
    "SITES",
    "STORE_CRASH_REPLACE",
    "STORE_LOCK_DEATH",
    "STORE_TORN_WRITE",
    "WORKER_CRASH",
    "WORKER_ERROR",
    "WORKER_HANG",
    "DegradePolicy",
    "FailureRecord",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "RunHealth",
    "RunManifest",
    "active_plan",
    "clear_fault_plan",
    "fault_scope",
    "install_fault_plan",
    "maybe_inject",
    "perform_worker_faults",
    "renormalize_clusters",
    "should_fire",
]
