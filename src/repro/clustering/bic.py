"""Bayesian Information Criterion for a K-means clustering.

The spherical-Gaussian BIC of Pelleg & Moore (X-means), the same criterion
the SimPoint tool uses to score clusterings (the paper cites Schwarz's BIC,
Sec. III-E).  Higher is better.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ClusteringError
from .kmeans import KMeansResult

_VARIANCE_FLOOR = 1e-12

#: Fraction of the data's overall per-dimension variance below which tighter
#: clusters stop improving the likelihood.  Real BBV profiles carry sampling
#: noise that keeps K-means inertia bounded away from zero; our synthetic
#: slices can be near-duplicates, which would make the ML variance collapse
#: and the likelihood diverge with k.  The floor models that measurement
#: noise (relative, so it is invariant to projection scaling).
DEFAULT_NOISE_FLOOR = 0.1


def bic_score(
    points: np.ndarray,
    result: KMeansResult,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> float:
    """BIC of ``result`` as a model of ``points``.

    Uses the closed-form spherical-Gaussian log-likelihood:

    ``l = sum_j nj*log(nj) - n*log(n) - n*d/2*log(2*pi*var) - d*(n-k)/2``

    with ``var`` the pooled ML variance (floored at ``noise_floor**2`` times
    the data's overall variance), penalized by ``p/2 * log(n)`` free
    parameters, ``p = k*(d+1)``.
    """
    n, d = points.shape
    k = result.k
    if n <= k:
        raise ClusteringError(f"BIC needs more points ({n}) than clusters ({k})")
    variance = result.inertia / (d * (n - k))
    total_variance = float(points.var(axis=0).mean())
    variance = max(variance, noise_floor ** 2 * total_variance, _VARIANCE_FLOOR)

    sizes = np.bincount(result.labels, minlength=k).astype(np.float64)
    nonzero = sizes[sizes > 0]
    log_likelihood = (
        float((nonzero * np.log(nonzero)).sum())
        - n * math.log(n)
        - 0.5 * n * d * math.log(2.0 * math.pi * variance)
        - 0.5 * d * (n - k)
    )
    num_params = k * (d + 1)
    return log_likelihood - 0.5 * num_params * math.log(n)
