"""SimPoint-style clustering: projection, K-means, BIC model selection.

Section III-E of the paper: BBVs are projected down to 100 dimensions by
random linear projection, clustered with K-means for k up to ``maxK = 50``,
and the clustering is chosen with a BIC goodness criterion; the BBV closest
to each centroid becomes the cluster representative.
"""

from .projection import random_projection, project
from .kmeans import KMeansResult, kmeans
from .bic import bic_score
from .simpoint import SimPointOptions, SimPointSelection, ClusterInfo, select_simpoints
from .online import OnlineCluster, OnlineClusterer, OnlineClusterOptions

__all__ = [
    "random_projection",
    "project",
    "KMeansResult",
    "kmeans",
    "bic_score",
    "SimPointOptions",
    "SimPointSelection",
    "ClusterInfo",
    "select_simpoints",
    "OnlineCluster",
    "OnlineClusterer",
    "OnlineClusterOptions",
]
