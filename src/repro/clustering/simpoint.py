"""Representative selection: the SimPoint procedure over sliced BBVs.

Sweep k = 1..maxK, score each K-means clustering with BIC, pick the smallest
k whose (min-max normalized) BIC clears a threshold (the SimPoint tool's
default 0.9), and take the slice closest to each centroid as the cluster
representative.  The representative's weight is its cluster's share of
filtered instructions — the "multiplier" numerator of Eq. (2) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ClusteringError
from .bic import bic_score
from .kmeans import KMeansResult, kmeans
from .projection import DEFAULT_DIMENSIONS, project


@dataclass(frozen=True)
class SimPointOptions:
    """Knobs of the selection procedure (paper defaults)."""

    max_k: int = 50
    bic_threshold: float = 0.9
    projection_dim: int = DEFAULT_DIMENSIONS
    seed: int = 42
    weighted: bool = True
    #: K-means restarts per k (best inertia wins); reduces init noise in
    #: the BIC curve.
    n_init: int = 3
    #: Representative near-tie margin, as a fraction of the cluster's mean
    #: centroid distance (see _build_clusters).  Zero means only exact
    #: distance ties are broken by median position; empirically the safest
    #: default (wider margins drag representatives off-centroid).
    tie_margin: float = 0.0


@dataclass
class ClusterInfo:
    """One cluster and its chosen representative slice."""

    cluster_id: int
    representative: int          # slice index
    members: List[int]           # slice indices
    instruction_mass: float      # sum of member filtered instruction counts
    multiplier: float            # mass / representative's own count (Eq. 2)


@dataclass
class SimPointSelection:
    """The outcome of region selection."""

    k: int
    clusters: List[ClusterInfo]
    labels: np.ndarray
    bic_by_k: Dict[int, float]

    @property
    def representative_indices(self) -> List[int]:
        return [c.representative for c in self.clusters]

    def coverage(self) -> float:
        """Fraction of instruction mass carried by representatives' clusters
        (1.0 by construction — every slice belongs to a cluster)."""
        return 1.0


def select_simpoints(
    bbvs: np.ndarray,
    instruction_counts: Sequence[float],
    options: Optional[SimPointOptions] = None,
    ineligible: Optional[Sequence[int]] = None,
) -> SimPointSelection:
    """Cluster slice BBVs and select one representative per cluster.

    ``ineligible`` slices may not be chosen as representatives (their
    instruction mass still counts toward their cluster's multiplier).  The
    pipeline passes the program-startup slices here: they execute the same
    code as later occurrences but on cold microarchitectural state, so they
    are valid cluster *members* but poor cluster *representatives* — the
    standard SimPoint practice of steering clear of initialization.
    """
    opts = options or SimPointOptions()
    counts = np.asarray(instruction_counts, dtype=np.float64)
    if bbvs.ndim != 2 or bbvs.shape[0] != counts.shape[0]:
        raise ClusteringError(
            f"BBV matrix {bbvs.shape} does not match {counts.shape[0]} counts"
        )
    n = bbvs.shape[0]
    points = project(bbvs, opts.projection_dim, opts.seed)
    weights = counts if opts.weighted else None

    # Sweep k; keep every clustering so the winner can be reused.  The sweep
    # stays well below n: with n - k residual degrees of freedom near zero
    # the variance estimate collapses and BIC diverges.
    max_k = min(opts.max_k, max(1, n // 2)) if n > 1 else 1
    results: Dict[int, KMeansResult] = {}
    scores: Dict[int, float] = {}
    # Restarts fight k-means init noise; with many points the landscape is
    # well determined and a single init keeps ref-scale sweeps affordable.
    n_init = 1 if n > 800 else max(1, opts.n_init)
    for k in range(1, max_k + 1):
        best = None
        for restart in range(n_init):
            candidate = kmeans(
                points, k, seed=opts.seed + k + 1000 * restart,
                weights=weights,
            )
            if best is None or candidate.inertia < best.inertia:
                best = candidate
        results[k] = best
        if n > k:
            scores[k] = bic_score(points, best)
        else:
            scores[k] = float("-inf")

    chosen_k = _choose_k(scores, opts.bic_threshold)
    chosen = results[chosen_k]
    clusters = _build_clusters(
        points, counts, chosen, opts.tie_margin,
        frozenset(ineligible or ()),
    )
    return SimPointSelection(
        k=chosen_k, clusters=clusters, labels=chosen.labels, bic_by_k=scores
    )


def _choose_k(scores: Dict[int, float], threshold: float) -> int:
    """Smallest k whose (smoothed, min-max normalized) BIC clears threshold.

    K-means is run from a single seeded initialization per k, so the raw BIC
    curve carries init noise: an isolated spike at large k must not define
    the normalization ceiling.  A short moving average removes the spikes
    while preserving the knee the SimPoint rule looks for.
    """
    finite = {k: s for k, s in scores.items() if np.isfinite(s)}
    if not finite:
        return 1
    ks = sorted(finite)
    raw = np.array([finite[k] for k in ks], dtype=np.float64)
    if len(ks) > 2:
        window = min(5, len(ks))
        kernel = np.ones(window) / window
        pad = window // 2
        padded = np.concatenate([np.repeat(raw[0], pad), raw,
                                 np.repeat(raw[-1], pad)])
        smooth = np.convolve(padded, kernel, mode="valid")[: len(ks)]
    else:
        smooth = raw
    lo, hi = float(smooth.min()), float(smooth.max())
    if hi == lo:
        return ks[0]
    for k, s in zip(ks, smooth):
        if (s - lo) / (hi - lo) >= threshold:
            return k
    return ks[-1]


def _build_clusters(
    points: np.ndarray,
    counts: np.ndarray,
    result: KMeansResult,
    tie_margin: float = 0.0,
    ineligible: frozenset = frozenset(),
) -> List[ClusterInfo]:
    clusters: List[ClusterInfo] = []
    for j in range(result.k):
        members = np.flatnonzero(result.labels == j)
        if members.size == 0:
            continue
        all_members = members
        eligible = np.array(
            [m for m in members if int(m) not in ineligible], dtype=np.int64
        )
        if eligible.size:
            members = eligible
        dists = ((points[members] - result.centroids[j]) ** 2).sum(axis=1)
        # Near-duplicate BBVs (nearly) tie on distance; a plain argmin would
        # then systematically elect the earliest such slice, which sits at
        # the start of the run (cold caches) and is microarchitecturally
        # atypical.  Among candidates within a small margin of the minimum,
        # take the median-position member: an interior, typical occurrence.
        cutoff = float(dists.min()) + tie_margin * float(dists.mean()) + 1e-12
        tied = members[dists <= cutoff]
        representative = int(tied[len(tied) // 2])
        mass = float(counts[all_members].sum())
        own = float(counts[representative])
        if own <= 0:
            raise ClusteringError(
                f"representative slice {representative} has no filtered "
                f"instructions; cannot weight cluster {j}"
            )
        clusters.append(
            ClusterInfo(
                cluster_id=j,
                representative=representative,
                members=[int(m) for m in all_members],
                instruction_mass=mass,
                multiplier=mass / own,
            )
        )
    clusters.sort(key=lambda c: c.representative)
    return clusters
