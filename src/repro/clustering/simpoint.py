"""Representative selection: the SimPoint procedure over sliced BBVs.

Sweep k = 1..maxK, score each K-means clustering with BIC, pick the smallest
k whose (min-max normalized) BIC clears a threshold (the SimPoint tool's
default 0.9), and take the slice closest to each centroid as the cluster
representative.  The representative's weight is its cluster's share of
filtered instructions — the "multiplier" numerator of Eq. (2) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ClusteringError
from ..obs.tracer import active_metrics
from .bic import bic_score
from .kmeans import KMeansResult, kmeans
from .projection import DEFAULT_DIMENSIONS, project


@dataclass(frozen=True)
class SimPointOptions:
    """Knobs of the selection procedure (paper defaults)."""

    max_k: int = 50
    bic_threshold: float = 0.9
    projection_dim: int = DEFAULT_DIMENSIONS
    seed: int = 42
    weighted: bool = True
    #: K-means restarts per k (best inertia wins); reduces init noise in
    #: the BIC curve.
    n_init: int = 3
    #: Representative near-tie margin, as a fraction of the cluster's mean
    #: centroid distance (see _build_clusters).  Zero means only exact
    #: distance ties are broken by median position; empirically the safest
    #: default (wider margins drag representatives off-centroid).
    tie_margin: float = 0.0
    #: Sweep strategy.  ``full`` (default) fits every k independently from
    #: k-means++ seeding — the reference procedure, unchanged selections.
    #: ``warm`` starts each k's fit from the best k-1 centroids plus one
    #: k-means++-style draw: far fewer Lloyd iterations per k, at the cost
    #: of selections that can differ (slightly) from the full sweep's.
    sweep: str = "full"
    #: If > 0, stop sweeping k after this many consecutive k whose BIC
    #: score failed to improve on the running best — the knee the SimPoint
    #: rule looks for is behind us by then.  0 sweeps every k (default).
    patience: int = 0


@dataclass
class ClusterInfo:
    """One cluster and its chosen representative slice."""

    cluster_id: int
    representative: int          # slice index
    members: List[int]           # slice indices
    instruction_mass: float      # sum of member filtered instruction counts
    multiplier: float            # mass / representative's own count (Eq. 2)


@dataclass
class SimPointSelection:
    """The outcome of region selection."""

    k: int
    clusters: List[ClusterInfo]
    labels: np.ndarray
    bic_by_k: Dict[int, float]

    @property
    def representative_indices(self) -> List[int]:
        return [c.representative for c in self.clusters]

    def coverage(self) -> float:
        """Fraction of instruction mass carried by representatives' clusters
        (1.0 by construction — every slice belongs to a cluster)."""
        return 1.0


def select_simpoints(
    bbvs: np.ndarray,
    instruction_counts: Sequence[float],
    options: Optional[SimPointOptions] = None,
    ineligible: Optional[Sequence[int]] = None,
    jobs: int = 1,
) -> SimPointSelection:
    """Cluster slice BBVs and select one representative per cluster.

    ``ineligible`` slices may not be chosen as representatives (their
    instruction mass still counts toward their cluster's multiplier).  The
    pipeline passes the program-startup slices here: they execute the same
    code as later occurrences but on cold microarchitectural state, so they
    are valid cluster *members* but poor cluster *representatives* — the
    standard SimPoint practice of steering clear of initialization.

    ``jobs > 1`` fans the full sweep's independent seeded k-fits across a
    process pool (each fit is deterministic given its seed, so the result
    is bit-identical to the serial sweep); the warm sweep is inherently
    sequential and ignores ``jobs``.
    """
    opts = options or SimPointOptions()
    if opts.sweep not in ("full", "warm"):
        raise ClusteringError(
            f"SimPointOptions.sweep must be 'full' or 'warm', "
            f"got {opts.sweep!r}"
        )
    counts = np.asarray(instruction_counts, dtype=np.float64)
    if bbvs.ndim != 2 or bbvs.shape[0] != counts.shape[0]:
        raise ClusteringError(
            f"BBV matrix {bbvs.shape} does not match {counts.shape[0]} counts"
        )
    n = bbvs.shape[0]
    points = project(bbvs, opts.projection_dim, opts.seed)
    weights = counts if opts.weighted else None

    # Sweep k; keep every clustering so the winner can be reused.  The sweep
    # stays well below n: with n - k residual degrees of freedom near zero
    # the variance estimate collapses and BIC diverges.
    max_k = min(opts.max_k, max(1, n // 2)) if n > 1 else 1
    if opts.sweep == "warm":
        results, scores = _warm_sweep(points, weights, opts, max_k, n)
    else:
        results, scores = _full_sweep(points, weights, opts, max_k, n, jobs)

    chosen_k = _choose_k(scores, opts.bic_threshold)
    chosen = results[chosen_k]
    reg = active_metrics()
    if reg is not None:
        reg.inc("select.runs")
        reg.inc("select.ks_swept", len(scores))
        reg.gauge("select.chosen_k", chosen_k)
    clusters = _build_clusters(
        points, counts, chosen, opts.tie_margin,
        frozenset(ineligible or ()),
    )
    return SimPointSelection(
        k=chosen_k, clusters=clusters, labels=chosen.labels, bic_by_k=scores
    )


def _note_early_stop() -> None:
    reg = active_metrics()
    if reg is not None:
        reg.inc("select.sweep_early_stops")


def _restarts_for(n: int, opts: SimPointOptions) -> int:
    # Restarts fight k-means init noise; with many points the landscape is
    # well determined and a single init keeps ref-scale sweeps affordable.
    return 1 if n > 800 else max(1, opts.n_init)


def _fit_k(task) -> KMeansResult:
    """Best-of-restarts k-means fit for one k (module-level: picklable)."""
    points, weights, k, base_seed, n_init = task
    best = None
    for restart in range(n_init):
        candidate = kmeans(
            points, k, seed=base_seed + k + 1000 * restart, weights=weights
        )
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    return best


def _score(points: np.ndarray, fit: KMeansResult, n: int) -> float:
    return bic_score(points, fit) if n > fit.k else float("-inf")


def _full_sweep(
    points: np.ndarray,
    weights: Optional[np.ndarray],
    opts: SimPointOptions,
    max_k: int,
    n: int,
    jobs: int,
):
    """Independent seeded fit per k — the reference sweep.

    Each k's fit depends only on its seed, so the sweep is embarrassingly
    parallel; with ``jobs > 1`` (and no early stop, which is inherently
    sequential) the k-fits fan out across a process pool and the results
    are bit-identical to the serial order.
    """
    n_init = _restarts_for(n, opts)
    tasks = [
        (points, weights, k, opts.seed, n_init) for k in range(1, max_k + 1)
    ]
    results: Dict[int, KMeansResult] = {}
    scores: Dict[int, float] = {}
    if jobs > 1 and opts.patience == 0 and len(tasks) > 1:
        from ..parallel.executor import fanout_map

        for fit in fanout_map(_fit_k, tasks, jobs):
            results[fit.k] = fit
            scores[fit.k] = _score(points, fit, n)
        return results, scores
    best_score = float("-inf")
    stale = 0
    for task in tasks:
        fit = _fit_k(task)
        results[fit.k] = fit
        s = scores[fit.k] = _score(points, fit, n)
        if s > best_score:
            best_score, stale = s, 0
        else:
            stale += 1
            if opts.patience and stale >= opts.patience:
                _note_early_stop()
                break
    return results, scores


def _warm_sweep(
    points: np.ndarray,
    weights: Optional[np.ndarray],
    opts: SimPointOptions,
    max_k: int,
    n: int,
):
    """Incremental-k sweep: each k starts from the previous k's centroids.

    k's init is the converged k-1 centroids plus one extra centroid drawn
    k-means++-style (proportional to squared distance from the nearest
    existing centroid).  Lloyd then needs only a handful of iterations to
    re-settle, instead of converging from scratch — the standard trick for
    incremental model-order sweeps.  Selections can differ slightly from
    the full sweep's; the k=1 fit uses the full sweep's seed so the two
    strategies agree exactly there.
    """
    from ..perf.kernels import assign_labels

    results: Dict[int, KMeansResult] = {}
    scores: Dict[int, float] = {}
    best_score = float("-inf")
    stale = 0
    prev: Optional[KMeansResult] = None
    for k in range(1, max_k + 1):
        if prev is None:
            fit = kmeans(points, k, seed=opts.seed + k, weights=weights)
        else:
            _, min_d2 = assign_labels(points, prev.centroids)
            total = float(min_d2.sum())
            rng = np.random.default_rng(opts.seed + k)
            if total <= 0.0:
                # Every point already coincides with a centroid; the new
                # one owns an empty cluster wherever it lands.
                extra = points[int(rng.integers(n))]
            else:
                choice = int(rng.choice(n, p=min_d2 / total))
                extra = points[choice]
            init = np.vstack([prev.centroids, extra[None, :]])
            fit = kmeans(
                points, k, seed=opts.seed + k, weights=weights,
                init_centroids=init,
            )
        prev = results[k] = fit
        s = scores[k] = _score(points, fit, n)
        if s > best_score:
            best_score, stale = s, 0
        else:
            stale += 1
            if opts.patience and stale >= opts.patience:
                _note_early_stop()
                break
    return results, scores


def _choose_k(scores: Dict[int, float], threshold: float) -> int:
    """Smallest k whose (smoothed, min-max normalized) BIC clears threshold.

    K-means is run from a single seeded initialization per k, so the raw BIC
    curve carries init noise: an isolated spike at large k must not define
    the normalization ceiling.  A short moving average removes the spikes
    while preserving the knee the SimPoint rule looks for.
    """
    finite = {k: s for k, s in scores.items() if np.isfinite(s)}
    if not finite:
        return 1
    ks = sorted(finite)
    raw = np.array([finite[k] for k in ks], dtype=np.float64)
    if len(ks) > 2:
        window = min(5, len(ks))
        kernel = np.ones(window) / window
        pad = window // 2
        padded = np.concatenate([np.repeat(raw[0], pad), raw,
                                 np.repeat(raw[-1], pad)])
        smooth = np.convolve(padded, kernel, mode="valid")[: len(ks)]
    else:
        smooth = raw
    lo, hi = float(smooth.min()), float(smooth.max())
    if hi == lo:
        return ks[0]
    for k, s in zip(ks, smooth):
        if (s - lo) / (hi - lo) >= threshold:
            return k
    return ks[-1]


def _build_clusters(
    points: np.ndarray,
    counts: np.ndarray,
    result: KMeansResult,
    tie_margin: float = 0.0,
    ineligible: frozenset = frozenset(),
) -> List[ClusterInfo]:
    clusters: List[ClusterInfo] = []
    for j in range(result.k):
        members = np.flatnonzero(result.labels == j)
        if members.size == 0:
            continue
        all_members = members
        eligible = np.array(
            [m for m in members if int(m) not in ineligible], dtype=np.int64
        )
        if eligible.size:
            members = eligible
        dists = ((points[members] - result.centroids[j]) ** 2).sum(axis=1)
        # Near-duplicate BBVs (nearly) tie on distance; a plain argmin would
        # then systematically elect the earliest such slice, which sits at
        # the start of the run (cold caches) and is microarchitecturally
        # atypical.  Among candidates within a small margin of the minimum,
        # take the median-position member: an interior, typical occurrence.
        cutoff = float(dists.min()) + tie_margin * float(dists.mean()) + 1e-12
        tied = members[dists <= cutoff]
        representative = int(tied[len(tied) // 2])
        mass = float(counts[all_members].sum())
        own = float(counts[representative])
        if own <= 0:
            raise ClusteringError(
                f"representative slice {representative} has no filtered "
                f"instructions; cannot weight cluster {j}"
            )
        clusters.append(
            ClusterInfo(
                cluster_id=j,
                representative=representative,
                members=[int(m) for m in all_members],
                instruction_mass=mass,
                multiplier=mass / own,
            )
        )
    clusters.sort(key=lambda c: c.representative)
    return clusters
