"""K-means with k-means++ seeding (Forgy/Lloyd iteration), pure numpy."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ClusteringError
from ..resilience import KMEANS_DIVERGE, maybe_inject


@dataclass
class KMeansResult:
    """Labels, centroids, and the within-cluster sum of squares."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    k: int
    iterations: int


def _kmeanspp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    dist2 = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = dist2.sum()
        if total <= 0.0:
            # All remaining points coincide with a chosen centroid.
            centroids[i:] = points[int(rng.integers(n))]
            break
        probs = dist2 / total
        choice = int(rng.choice(n, p=probs))
        centroids[i] = points[choice]
        new_d = ((points - centroids[i]) ** 2).sum(axis=1)
        np.minimum(dist2, new_d, out=dist2)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-8,
    weights: np.ndarray = None,
) -> KMeansResult:
    """Lloyd's algorithm; optionally instruction-weighted points.

    Weighting points by their instruction counts makes big slices pull
    centroids harder, matching how extrapolation later weights clusters.
    """
    if points.ndim != 2:
        raise ClusteringError(f"expected 2-D points, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"need 1 <= k <= {n}, got k={k}")
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,) or np.any(weights < 0):
            raise ClusteringError("weights must be non-negative, one per point")

    maybe_inject(KMEANS_DIVERGE, f"kmeans:k={k}")
    rng = np.random.default_rng(seed)
    centroids = _kmeanspp_init(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        # Assignment step.
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        # Update step.
        new_centroids = centroids.copy()
        for j in range(k):
            mask = labels == j
            w = weights[mask]
            if w.sum() > 0:
                new_centroids[j] = np.average(points[mask], axis=0, weights=w)
            else:
                # Re-seed an empty cluster at the farthest point.
                far = int(d2.min(axis=1).argmax())
                new_centroids[j] = points[far]
        shift = float(((new_centroids - centroids) ** 2).sum())
        centroids = new_centroids
        if shift <= tol:
            break
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    inertia = float(d2[np.arange(n), labels].sum())
    return KMeansResult(
        labels=labels, centroids=centroids, inertia=inertia, k=k,
        iterations=iterations,
    )
