"""K-means with k-means++ seeding (Forgy/Lloyd iteration), pure numpy.

The assignment step runs in GEMM form by default (``|x|^2 + |c|^2 -
2 x . c^T`` with row chunking, see :mod:`repro.perf.kernels`): the same
squared distances as the naive broadcast without the ``O(n * k * d)``
temporary, and the inner product goes through BLAS.  The broadcast form is
kept behind ``assignment="broadcast"`` (or ``REPRO_KMEANS_ASSIGN``) as a
debugging reference.  The update step accumulates weighted sums per cluster
with ``np.bincount`` — one pass over the points per dimension instead of
``k`` boolean-mask scans.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ClusteringError
from ..obs.tracer import active_metrics
from ..perf.kernels import assign_labels, weighted_means
from ..resilience import KMEANS_DIVERGE, maybe_inject

_ASSIGNMENT_MODES = ("gemm", "broadcast")


def default_assignment() -> str:
    """Assignment mode from ``REPRO_KMEANS_ASSIGN`` (default ``gemm``)."""
    mode = os.environ.get("REPRO_KMEANS_ASSIGN", "gemm").strip().lower()
    if mode not in _ASSIGNMENT_MODES:
        raise ClusteringError(
            f"REPRO_KMEANS_ASSIGN must be one of {_ASSIGNMENT_MODES}, "
            f"got {mode!r}"
        )
    return mode


@dataclass
class KMeansResult:
    """Labels, centroids, and the within-cluster sum of squares."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    k: int
    iterations: int


def _kmeanspp_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    dist2 = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = dist2.sum()
        if total <= 0.0:
            # All remaining points coincide with a chosen centroid: any
            # fill is equivalent (the extra centroids own empty clusters),
            # so use the deterministic one — duplicating the first
            # centroid — rather than consuming an rng draw for a choice
            # that cannot matter.
            centroids[i:] = centroids[0]
            break
        probs = dist2 / total
        choice = int(rng.choice(n, p=probs))
        centroids[i] = points[choice]
        new_d = ((points - centroids[i]) ** 2).sum(axis=1)
        np.minimum(dist2, new_d, out=dist2)
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray, mode: str):
    """``(labels, min_sq_dist)`` under either assignment mode."""
    if mode == "gemm":
        return assign_labels(points, centroids)
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = d2.argmin(axis=1)
    return labels, d2[np.arange(points.shape[0]), labels]


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-8,
    weights: Optional[np.ndarray] = None,
    init_centroids: Optional[np.ndarray] = None,
    assignment: Optional[str] = None,
) -> KMeansResult:
    """Lloyd's algorithm; optionally instruction-weighted points.

    Weighting points by their instruction counts makes big slices pull
    centroids harder, matching how extrapolation later weights clusters.

    ``init_centroids`` skips k-means++ seeding and starts Lloyd iteration
    from the given ``(k, d)`` array — the warm-start hook the incremental-k
    sweep in :mod:`repro.clustering.simpoint` uses.  ``assignment`` picks
    the distance computation (``gemm``/``broadcast``); default comes from
    :func:`default_assignment`.
    """
    if points.ndim != 2:
        raise ClusteringError(f"expected 2-D points, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"need 1 <= k <= {n}, got k={k}")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,) or np.any(weights < 0):
            raise ClusteringError("weights must be non-negative, one per point")
    mode = assignment or default_assignment()
    if mode not in _ASSIGNMENT_MODES:
        raise ClusteringError(
            f"assignment must be one of {_ASSIGNMENT_MODES}, got {mode!r}"
        )

    maybe_inject(KMEANS_DIVERGE, f"kmeans:k={k}")
    if init_centroids is not None:
        centroids = np.asarray(init_centroids, dtype=np.float64)
        if centroids.shape != (k, points.shape[1]):
            raise ClusteringError(
                f"init_centroids shape {centroids.shape} does not match "
                f"(k={k}, d={points.shape[1]})"
            )
        centroids = centroids.copy()
    else:
        rng = np.random.default_rng(seed)
        centroids = _kmeanspp_init(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    iterations = 0
    # The counter is read after the loop for the iteration report.
    for iterations in range(1, max_iter + 1):  # noqa: B007
        labels, min_d2 = _assign(points, centroids, mode)
        new_centroids, wsum = weighted_means(points, labels, k, weights)
        empty = wsum == 0
        if empty.any():
            # Re-seed empty (or zero-weight) clusters at the farthest point.
            far = int(min_d2.argmax())
            new_centroids[empty] = points[far]
        shift = float(((new_centroids - centroids) ** 2).sum())
        centroids = new_centroids
        if shift <= tol:
            break
    labels, min_d2 = _assign(points, centroids, mode)
    inertia = float(min_d2.sum())
    reg = active_metrics()
    if reg is not None:  # once per fit, never per iteration
        reg.inc("kmeans.fits")
        reg.inc("kmeans.iterations", iterations)
    return KMeansResult(
        labels=labels, centroids=centroids, inertia=inertia, k=k,
        iterations=iterations,
    )
