"""Incremental clustering of region signatures for live sampling.

Pac-Sim's online counterpart of SimPoint: regions arrive one at a time
as the single live replay closes them, and each must be classified
immediately — "matches an existing cluster, extrapolate from its
representative" or "novel, simulate in detail and admit as a new
representative".  There is no k sweep and no BIC: k grows exactly when
a signature lands farther than the novelty threshold from every
centroid.

Signatures are the offline pipeline's fingerprints — L1-normalized
BBVs, randomly projected with the same seeded matrix — so a probe
prefix compares to a stored exemplar by *shape*, not length.  Nearest-
centroid queries go through :func:`repro.perf.kernels.assign_labels`
(the GEMM form the select stage uses), which is the warm start: the
online clusterer reuses the exact assignment kernel, so its matched/
novel decisions are consistent with what an offline k-means pass over
the same centroids would assign.

Each cluster keeps a seeded reservoir of member exemplars and running
distance moments; the dispersion is the Ekman-style first-phase spread
estimate that drives the top-up pass (which cluster deserves one more
detailed sample) in :mod:`repro.analysis.online`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ClusteringError
from ..perf.kernels import assign_labels
from .projection import DEFAULT_DIMENSIONS, random_projection

#: Exemplars kept per cluster (reservoir sampling, seeded).
DEFAULT_RESERVOIR = 8


@dataclass(frozen=True)
class OnlineClusterOptions:
    """Knobs of the incremental clusterer.

    ``threshold`` is the novelty distance in signature space: a closing
    region whose signature lies farther than this from every centroid
    is novel.  Any value <= 0 forces *every* region novel — the
    forced-novel mode the equivalence suite pins against the offline
    pipeline.
    """

    threshold: float = 0.1
    projection_dim: int = DEFAULT_DIMENSIONS
    seed: int = 42
    reservoir_size: int = DEFAULT_RESERVOIR
    #: Update centroids as running means of member signatures; off keeps
    #: each centroid frozen at its representative's signature.
    update_centroids: bool = True

    def __post_init__(self) -> None:
        if self.projection_dim < 1:
            raise ClusteringError(
                f"projection_dim must be >= 1, got {self.projection_dim}"
            )
        if self.reservoir_size < 1:
            raise ClusteringError(
                f"reservoir_size must be >= 1, got {self.reservoir_size}"
            )


@dataclass
class OnlineCluster:
    """One admitted phase: representative, members, running spread."""

    cluster_id: int
    representative: int
    centroid: np.ndarray
    members: List[int] = field(default_factory=list)
    #: Filtered instruction mass of all members (the Eq. 2 numerator).
    mass: int = 0
    #: Reservoir of (region index, signature) exemplars.
    reservoir: List[Tuple[int, np.ndarray]] = field(default_factory=list)
    #: Running moments of member distance-at-classify-time.
    sum_d: float = 0.0
    sum_d2: float = 0.0
    _signature_sum: Optional[np.ndarray] = None
    _seen: int = 0

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def dispersion(self) -> float:
        """RMS signature distance of members from the centroid.

        The Ekman first-phase spread proxy: clusters whose members
        scatter widely in fingerprint space are the ones whose single
        representative least deserves to speak for them.
        """
        if not self.members:
            return 0.0
        return float(np.sqrt(self.sum_d2 / len(self.members)))


class OnlineClusterer:
    """Classify-then-maybe-admit clustering over streaming signatures."""

    def __init__(
        self, input_dim: int, options: Optional[OnlineClusterOptions] = None
    ) -> None:
        if input_dim < 1:
            raise ClusteringError(f"input_dim must be >= 1, got {input_dim}")
        self.options = options or OnlineClusterOptions()
        self.input_dim = input_dim
        dim = self.options.projection_dim
        self._projection: Optional[np.ndarray] = (
            random_projection(input_dim, dim, self.options.seed)
            if input_dim > dim else None
        )
        self.clusters: List[OnlineCluster] = []
        self._centroids: Optional[np.ndarray] = None
        self._rng = np.random.default_rng(self.options.seed)

    # -- signatures -----------------------------------------------------------

    def signature(self, bbv: np.ndarray) -> np.ndarray:
        """Project one BBV exactly as the offline select stage would.

        L1 normalization first (shape, not length), then the seeded
        random projection — the same math as
        :func:`repro.clustering.projection.project` on a 1-row matrix.
        """
        if bbv.ndim != 1 or bbv.shape[0] != self.input_dim:
            raise ClusteringError(
                f"expected a {self.input_dim}-dim BBV, got shape {bbv.shape}"
            )
        norm = float(np.abs(bbv).sum())
        normalized = bbv / (norm if norm != 0.0 else 1.0)
        if self._projection is None:
            return normalized
        return normalized @ self._projection

    # -- classify / admit -----------------------------------------------------

    def classify(
        self, signature: np.ndarray
    ) -> Tuple[Optional[OnlineCluster], float]:
        """Nearest cluster and its distance; ``(None, inf)`` when novel.

        A non-positive threshold (forced-novel mode) never matches, and
        an empty model is trivially novel.
        """
        if not self.clusters or self.options.threshold <= 0.0:
            return None, float("inf")
        labels, min_d2 = assign_labels(
            signature[None, :], self._centroid_matrix()
        )
        distance = float(np.sqrt(min_d2[0]))
        if distance > self.options.threshold:
            return None, distance
        return self.clusters[int(labels[0])], distance

    def admit(
        self, region_index: int, signature: np.ndarray, mass: int
    ) -> OnlineCluster:
        """Open a new cluster with ``region_index`` as representative."""
        cluster = OnlineCluster(
            cluster_id=len(self.clusters),
            representative=region_index,
            centroid=signature.copy(),
        )
        self.clusters.append(cluster)
        self._centroids = None
        self._attach(cluster, region_index, signature, 0.0, mass)
        return cluster

    def attach(
        self,
        cluster: OnlineCluster,
        region_index: int,
        signature: np.ndarray,
        distance: float,
        mass: int,
    ) -> None:
        """Fold a matched region into its cluster's running state."""
        self._attach(cluster, region_index, signature, distance, mass)

    def _attach(
        self,
        cluster: OnlineCluster,
        region_index: int,
        signature: np.ndarray,
        distance: float,
        mass: int,
    ) -> None:
        cluster.members.append(region_index)
        cluster.mass += mass
        cluster.sum_d += distance
        cluster.sum_d2 += distance * distance
        cluster._seen += 1
        if cluster._signature_sum is None:
            cluster._signature_sum = signature.astype(np.float64).copy()
        else:
            cluster._signature_sum += signature
        if self.options.update_centroids:
            cluster.centroid = cluster._signature_sum / cluster._seen
            self._centroids = None
        # Reservoir sampling (algorithm R): every member has equal odds
        # of being an exemplar no matter how long the stream runs.
        reservoir = cluster.reservoir
        if len(reservoir) < self.options.reservoir_size:
            reservoir.append((region_index, signature.copy()))
        else:
            slot = int(self._rng.integers(0, cluster._seen))
            if slot < self.options.reservoir_size:
                reservoir[slot] = (region_index, signature.copy())

    def _centroid_matrix(self) -> np.ndarray:
        if self._centroids is None:
            self._centroids = np.stack(
                [c.centroid for c in self.clusters]
            )
        return self._centroids

    @property
    def k(self) -> int:
        return len(self.clusters)
