"""Random linear projection of BBVs (SimPoint's dimensionality reduction)."""

from __future__ import annotations

import numpy as np

from ..errors import ClusteringError

DEFAULT_DIMENSIONS = 100


def random_projection(
    input_dim: int, output_dim: int = DEFAULT_DIMENSIONS, seed: int = 0
) -> np.ndarray:
    """A seeded ``input_dim x output_dim`` projection matrix.

    Entries are uniform in [-1, 1] as in the SimPoint tool; scaling is
    irrelevant to K-means geometry.
    """
    if input_dim < 1 or output_dim < 1:
        raise ClusteringError(
            f"projection dims must be positive ({input_dim}->{output_dim})"
        )
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(input_dim, output_dim))


def project(
    bbvs: np.ndarray, output_dim: int = DEFAULT_DIMENSIONS, seed: int = 0
) -> np.ndarray:
    """L1-normalize each BBV row, then randomly project it.

    Normalization makes the fingerprint a distribution over (thread, block)
    work shares, so slices of different lengths compare by *shape*.
    If the input dimension is already at most ``output_dim``, the normalized
    vectors are returned unchanged (projection would add nothing).
    """
    if bbvs.ndim != 2:
        raise ClusteringError(f"expected 2-D BBV matrix, got shape {bbvs.shape}")
    norms = np.abs(bbvs).sum(axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    normalized = bbvs / norms
    if bbvs.shape[1] <= output_dim:
        return normalized
    matrix = random_projection(bbvs.shape[1], output_dim, seed)
    return normalized @ matrix
