"""repro.perf: the batched event hot path and vectorized analysis kernels.

This package holds the performance layer added by the perf-opt PR:

* :mod:`repro.perf.ring` — the fixed-capacity block-event ring that the
  functional engine and the constrained replayer flush to observers in
  batches (parallel numpy columns) instead of per-event Python dispatch;
* :mod:`repro.perf.kernels` — GEMM-form K-means assignment with row
  chunking and ``np.bincount`` centroid updates;
* :mod:`repro.perf.bench` / :mod:`repro.perf.cli` — the ``repro-bench``
  microbenchmark harness that times the engine, profile, and select hot
  paths and records ``BENCH_perf.json`` (imported lazily; not re-exported
  here to keep the engine -> ring import edge cycle-free).
"""

from .kernels import assign_labels, squared_distances, weighted_means
from .ring import (
    DEFAULT_CAPACITY,
    FLAG_LIBRARY,
    EventBatch,
    EventRing,
    batch_start_indices,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "FLAG_LIBRARY",
    "EventBatch",
    "EventRing",
    "assign_labels",
    "batch_start_indices",
    "squared_distances",
    "weighted_means",
]
