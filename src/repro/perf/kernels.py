"""Vectorized analysis kernels for the clustering hot path.

The K-means assignment step used to broadcast ``points[:, None, :] -
centroids[None, :, :]``, allocating an ``O(n * k * d)`` temporary per Lloyd
iteration.  :func:`assign_labels` computes the same squared distances in the
GEMM form ``|x|^2 + |c|^2 - 2 x . c^T`` with row chunking, so peak memory is
bounded by ``chunk_rows * k`` at any population size and the inner product
runs through BLAS.

:func:`weighted_means` replaces the per-cluster boolean-mask update loop
with ``np.bincount`` accumulation — one pass over the points per dimension
instead of ``k`` mask scans.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Row-chunk size for the GEMM assignment: bounds the distance temporary at
#: ``DEFAULT_CHUNK_ROWS * k`` doubles regardless of the population size.
DEFAULT_CHUNK_ROWS = 16384


def squared_distances(
    points: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """Full ``(n, k)`` squared-distance matrix in the GEMM form.

    Clamped at zero: cancellation in ``|x|^2 + |c|^2 - 2 x . c^T`` can
    produce tiny negative values for near-coincident pairs.
    """
    x2 = np.einsum("ij,ij->i", points, points)
    c2 = np.einsum("ij,ij->i", centroids, centroids)
    d2 = x2[:, None] + c2[None, :] - 2.0 * (points @ centroids.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def assign_labels(
    points: np.ndarray,
    centroids: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment; returns ``(labels, min_sq_dist)``.

    Processes ``chunk_rows`` points at a time so the ``chunk x k`` distance
    temporary stays bounded at any ``n * k``.
    """
    n = points.shape[0]
    labels = np.empty(n, dtype=np.int64)
    min_d2 = np.empty(n, dtype=np.float64)
    c2 = np.einsum("ij,ij->i", centroids, centroids)
    for lo in range(0, n, chunk_rows):
        hi = min(lo + chunk_rows, n)
        chunk = points[lo:hi]
        x2 = np.einsum("ij,ij->i", chunk, chunk)
        d2 = x2[:, None] + c2[None, :] - 2.0 * (chunk @ centroids.T)
        np.maximum(d2, 0.0, out=d2)
        labels[lo:hi] = d2.argmin(axis=1)
        min_d2[lo:hi] = d2[np.arange(hi - lo), labels[lo:hi]]
    return labels, min_d2


def weighted_means(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cluster weighted means via ``np.bincount`` accumulation.

    Returns ``(means, weight_sums)``; a cluster with zero total weight gets
    a zero row in ``means`` (callers re-seed empty clusters themselves).
    """
    n, d = points.shape
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    wsum = np.bincount(labels, weights=weights, minlength=k)
    acc = np.empty((k, d), dtype=np.float64)
    for j in range(d):
        acc[:, j] = np.bincount(
            labels, weights=weights * points[:, j], minlength=k
        )
    nonzero = wsum > 0
    means = np.zeros((k, d), dtype=np.float64)
    means[nonzero] = acc[nonzero] / wsum[nonzero, None]
    return means, wsum
