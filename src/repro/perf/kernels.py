"""Performance kernels: clustering reductions and the scheduler-core tiers.

Two families live here:

**Clustering kernels.**  The K-means assignment step used to broadcast
``points[:, None, :] - centroids[None, :, :]``, allocating an
``O(n * k * d)`` temporary per Lloyd iteration.  :func:`assign_labels`
computes the same squared distances in the GEMM form
``|x|^2 + |c|^2 - 2 x . c^T`` with row chunking, so peak memory is bounded
by ``chunk_rows * k`` at any population size and the inner product runs
through BLAS.  :func:`weighted_means` replaces the per-cluster
boolean-mask update loop with ``np.bincount`` accumulation — one pass over
the points per dimension instead of ``k`` mask scans.

**Scheduler-kernel tiers.**  The tape-driven scheduler loop (see
:mod:`repro.exec_engine.schedcore`) is the wall-clock core of every
functional execution.  Its round prologue pays for configuration tests —
wait policy, flow control, event bounding — that are invariant for the
whole run.  The loop is kept as a single **source template**
(:data:`_KERNEL_TEMPLATE`) and rendered in two tiers:

* ``reference`` — every configuration test left in as a runtime branch.
  Pure Python, always available, the authoritative semantics.
* ``compiled`` — the run's actual configuration folded into the source
  before ``compile()``: the ACTIVE-spin scan, the flow-control
  eligibility branch and the ``max_events`` bound disappear from the
  bytecode when the run does not use them.  Still pure Python —
  "compiled" means source-specialized, not natively compiled.

Both tiers render from the same template, so there is exactly one
statement of the loop's semantics and the tiers are bit-identical by
construction (enforced by the tier-parity tests): identical event order,
rng-stream consumption, observer state and
:class:`~repro.exec_engine.engine.EngineResult`.

Tier selection: the ``REPRO_KERNEL_TIER`` environment variable (or the
engine's ``kernel_tier=`` argument) takes ``reference``, ``compiled`` or
``auto``.  ``auto`` — the default — resolves to ``compiled``: the most
specialized tier that is unconditionally available.  If ``numba`` is
importable, :func:`maybe_jit` lets *numeric* helpers opt into JIT
compilation; the scheduler loop itself walks an object graph (threads,
events, observers) that no nopython JIT can express, so numba never
changes tier resolution and the pure-Python rendering stays authoritative
everywhere.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the baked toolchain has no numba
    numba = None
    HAVE_NUMBA = False

#: Row-chunk size for the GEMM assignment: bounds the distance temporary at
#: ``DEFAULT_CHUNK_ROWS * k`` doubles regardless of the population size.
DEFAULT_CHUNK_ROWS = 16384


def squared_distances(
    points: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """Full ``(n, k)`` squared-distance matrix in the GEMM form.

    Clamped at zero: cancellation in ``|x|^2 + |c|^2 - 2 x . c^T`` can
    produce tiny negative values for near-coincident pairs.
    """
    x2 = np.einsum("ij,ij->i", points, points)
    c2 = np.einsum("ij,ij->i", centroids, centroids)
    d2 = x2[:, None] + c2[None, :] - 2.0 * (points @ centroids.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def assign_labels(
    points: np.ndarray,
    centroids: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment; returns ``(labels, min_sq_dist)``.

    Processes ``chunk_rows`` points at a time so the ``chunk x k`` distance
    temporary stays bounded at any ``n * k``.
    """
    n = points.shape[0]
    labels = np.empty(n, dtype=np.int64)
    min_d2 = np.empty(n, dtype=np.float64)
    c2 = np.einsum("ij,ij->i", centroids, centroids)
    for lo in range(0, n, chunk_rows):
        hi = min(lo + chunk_rows, n)
        chunk = points[lo:hi]
        x2 = np.einsum("ij,ij->i", chunk, chunk)
        d2 = x2[:, None] + c2[None, :] - 2.0 * (chunk @ centroids.T)
        np.maximum(d2, 0.0, out=d2)
        labels[lo:hi] = d2.argmin(axis=1)
        min_d2[lo:hi] = d2[np.arange(hi - lo), labels[lo:hi]]
    return labels, min_d2


def weighted_means(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cluster weighted means via ``np.bincount`` accumulation.

    Returns ``(means, weight_sums)``; a cluster with zero total weight gets
    a zero row in ``means`` (callers re-seed empty clusters themselves).
    """
    n, d = points.shape
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    wsum = np.bincount(labels, weights=weights, minlength=k)
    acc = np.empty((k, d), dtype=np.float64)
    for j in range(d):
        acc[:, j] = np.bincount(
            labels, weights=weights * points[:, j], minlength=k
        )
    nonzero = wsum > 0
    means = np.zeros((k, d), dtype=np.float64)
    means[nonzero] = acc[nonzero] / wsum[nonzero, None]
    return means, wsum


# -- scheduler-kernel tiers ---------------------------------------------------

#: Recognized values for ``REPRO_KERNEL_TIER`` / ``kernel_tier=``.
VALID_TIERS = ("reference", "compiled", "auto")


def maybe_jit(fn: Callable, **jit_kwargs) -> Callable:
    """``numba.njit(fn)`` when numba is importable, else ``fn`` unchanged.

    The guard keeping the pure-Python definition authoritative: helpers
    decorated with this must be correct *without* numba, because the baked
    CI toolchain does not ship it.
    """
    if HAVE_NUMBA:  # pragma: no cover - numba absent in the baked image
        return numba.njit(**jit_kwargs)(fn)
    return fn


def select_tier(env: Optional[dict] = None) -> str:
    """Resolve the kernel tier from the environment (default ``auto``)."""
    source = os.environ if env is None else env
    raw = source.get("REPRO_KERNEL_TIER", "auto").strip().lower()
    if raw not in VALID_TIERS:
        raise ValueError(
            f"REPRO_KERNEL_TIER must be one of {VALID_TIERS}, got {raw!r}"
        )
    return raw


_KERNEL_TEMPLATE = '''\
def scheduler_kernel(self):
    threads = self._threads
    omp = self.omp
    spin_block = omp.spin_block
    spin_iters = omp.spin.iterations_per_visit
    active = self.wait_policy is WaitPolicy.ACTIVE
    passive = self.wait_policy is WaitPolicy.PASSIVE
    rng = self._rng
    ring = self._ring
    streams = self._streams
    nthreads = self.nthreads

    per_thread_total = self.per_thread_total
    per_thread_filtered = self.per_thread_filtered
    runnable_state = ThreadState.RUNNABLE
    blocked_state = ThreadState.BLOCKED
    done_state = ThreadState.DONE
    getrandbits = rng.getrandbits
    rng_random = rng.random
    quantum = self.quantum_instructions
    flow = self.flow_control
    max_events = self.max_events
    dispatch = self._dispatch
    bisect = bisect_left
    num_events = 0

    ring_rows = ring.buffers()
    append_row = ring_rows.append
    extend_rows = ring_rows.extend
    ring_capacity = ring.capacity
    ring_flush = ring.flush
    encode = ring.encode

    # Interned row-code lists, one cache per tid keyed by ``id()`` of an
    # op's bid column (alive in the tapes for the whole run).
    # Structurally identical constructs share pattern columns, so a
    # workload's few distinct patterns encode once per tid; every
    # consume window then costs a single slice + ``extend`` (or one
    # ``append`` of a small int) and flush decodes through the ring's
    # per-code tables.
    row_caches = [{} for _ in range(nthreads)]

    # Inline barrier handling requires the sync buffer, which exists
    # exactly when no attached observer demands per-sync flushes; with
    # an order-strict observer, barrier ops dispatch through the
    # shared handlers (identical per-event semantics).
    sync_buf = self._sync_buf
    inline_barriers = sync_buf is not None
    sb_append = sync_buf.append if inline_barriers else None
    barriers = self._barriers

    # (bid, total, filtered) columns of the synchronization-library
    # blocks the inline barrier path executes on threads' behalf.
    def _cols(block):
        n = block.n_instr
        return block.bid, n, 0 if block.image.is_library else n

    be_bid, be_t, be_f = _cols(omp.barrier_enter)
    bx_bid, bx_t, bx_f = _cols(omp.barrier_exit)
    fw_bid, fw_t, fw_f = _cols(omp.futex_wait)
    fk_bid, fk_t, fk_f = _cols(omp.futex_wake)

    # Constant per-tid row codes for the synchronization-library blocks
    # the inline barrier path emits — a full release is assembled from
    # these pre-encoded ints, only their order follows the arrival
    # order.  ``wake_t``/``wake_f`` is what each woken thread's
    # counters advance by.
    be_rows = [encode(t, be_bid, 1) for t in range(nthreads)]
    bx_rows = [encode(t, bx_bid, 1) for t in range(nthreads)]
    fw_rows = [encode(t, fw_bid, 1) for t in range(nthreads)]
    fk_rows = [encode(t, fk_bid, 1) for t in range(nthreads)]
    if passive:
        wake_t = fk_t + bx_t
        wake_f = fk_f + bx_f
        rel_n = 2 * nthreads - 1
    else:
        wake_t = bx_t
        wake_f = bx_f
        rel_n = nthreads
    # All threads are live at a full release (a finished thread could
    # never have arrived), so the post-release run-queue is every tid.
    all_tids = list(range(nthreads))

    # The run-queue: ascending tids, maintained incrementally — the same
    # order `_rebuild_runnable` produces.  Out-of-line handlers signal
    # their state changes via ``_sched_dirty``; the queue is resynced
    # right after dispatch.  The numpy mirror for columnar flow control
    # rebuilds lazily.
    runnable = [t.tid for t in threads if t.state is runnable_state]
    self._runnable = runnable
    self._sched_dirty = False
    n_done = sum(1 for t in threads if t.state is done_state)
    arr_stale = True
    # ``n_run`` mirrors ``len(runnable)`` and ``nbuf`` mirrors
    # ``len(ring_rows)``; both are maintained at every mutation site so
    # the hot loop never calls ``len``.  ``nbuf`` is resynced after any
    # out-of-line call that may append to (or flush) the ring.
    n_run = len(runnable)
    nbuf = len(ring_rows)

    # ``i.bit_length()`` memoized for every eligible-set size the inlined
    # ``randrange`` can see (identical values, one index instead of a
    # method call per round).
    bl = tuple(i.bit_length() for i in range(nthreads + 1))

    # Per-thread tape cursors.  Layout (list, not attributes — indexed
    # access is the fastest Python offers here):
    #   [0] op index            [1] run kind (0 none, 1 tiled, 2 table)
    #   [2] run row codes (interned via ring.encode)  [3] unused
    #   [4] run pre_t  [5] run pre_f
    #   [6] event index in run  [7] run end (table) / pattern len
    #   [8] off_t  [9] off_f  (ptt/ptf = off + pre[idx])
    #   [10] tiled iterations left  [11] iter total  [12] iter filtered
    cursors = [
        [0, 0, None, None, None, None, 0, 0, 0, 0, 0, 0, 0]
        for _ in range(nthreads)
    ]

    # ``total_instructions == sum(per_thread_total)`` (likewise
    # filtered) is an engine-wide invariant: every counter mutation —
    # handlers, the inline barrier path, quantum consumption — advances
    # a per-thread counter.  The globals are therefore recomputed as
    # sums at every loop exit instead of being carried round by round.
#%if bounded
    maxev = max_events if max_events is not None else (1 << 62)
#%endif

    while True:
        if not runnable:
            self.total_instructions = sum(per_thread_total)
            self.filtered_instructions = sum(per_thread_filtered)
            if n_done == nthreads:
                break
            blocked = [
                t.tid for t in threads if t.state is blocked_state
            ]
            raise DeadlockError(
                f"all live threads blocked: {blocked} "
                f"(barriers={dict(barriers)!r})"
            )

#%if active
        if active:
            for t in threads:
                if t.state is blocked_state:
                    self._exec_block(t.tid, spin_block, spin_iters)
            nbuf = len(ring_rows)
#%endif

#%if flow
        if flow is not None:
            if arr_stale:
                self._runnable_arr = np.array(runnable, dtype=np.int64)
                arr_stale = False
            eligible = flow.eligible(
                per_thread_filtered, runnable, self._runnable_arr
            )
        else:
            eligible = runnable
        n_el = len(eligible)
#%else
        eligible = runnable
        n_el = n_run
#%endif
        # Inlined ``rng.randrange(len(eligible))`` — the exact
        # ``Random._randbelow_with_getrandbits`` algorithm, consuming
        # the identical generator stream (interleavings depend on it).
        k = bl[n_el]
        r = getrandbits(k)
        while r >= n_el:
            r = getrandbits(k)
        tid = eligible[r]

        ptt = per_thread_total[tid]
        ptf = per_thread_filtered[tid]
        stop_at = ptt + int(quantum * (1.0 + rng_random() * 0.5))
        cur = cursors[tid]
        kind = cur[1]

        while ptt < stop_at:
            if kind == 1:
                # Tiled run: consume within the current iteration's
                # pattern, then roll the per-iteration offsets.
                pre_t = cur[4]
                e = cur[6]
                m = cur[7]
                off_t = cur[8]
                if e == 0:
                    # At an iteration boundary: every iteration whose
                    # last event still starts inside the quantum is
                    # consumed whole — emit all of them as one
                    # ``pattern * q`` extend instead of a bisect and
                    # three extends per iteration.  Identical event
                    # stream, counters and rng use; only the ring's
                    # flush boundaries may shift (observer state is
                    # boundary-independent by the batching contract).
                    budget = stop_at - off_t - pre_t[m - 1]
                    if budget > 0:
                        iter_t = cur[11]
                        q = (budget - 1) // iter_t + 1
                        left = cur[10]
                        if q > left:
                            q = left
                        n = m * q
                        num_events += n
                        if n == 1:
                            append_row(cur[2][0])
                        else:
                            extend_rows(cur[2] * q)
                        nbuf += n
                        if nbuf >= ring_capacity:
                            ring_flush()
                            nbuf = 0
                        off_t += iter_t * q
                        cur[8] = off_t
                        cur[9] += cur[12] * q
                        ptt = off_t
                        ptf = cur[9]
                        left -= q
                        if left:
                            cur[10] = left
                            continue
                        kind = 0
                        cur[1] = 0
                        continue
                j = bisect(pre_t, stop_at - off_t, e, m)
                if j > e:
                    n = j - e
                    num_events += n
                    if n == 1:
                        append_row(cur[2][e])
                    else:
                        extend_rows(cur[2][e:j])
                    nbuf += n
                    if nbuf >= ring_capacity:
                        ring_flush()
                        nbuf = 0
                    ptt = off_t + pre_t[j]
                    ptf = cur[9] + cur[5][j]
                if j < m:
                    cur[6] = j
                    break
                left = cur[10] - 1
                if left:
                    cur[10] = left
                    cur[6] = 0
                    cur[8] = off_t + cur[11]
                    cur[9] += cur[12]
                    continue
                kind = 0
                cur[1] = 0
                continue
            if kind == 2:
                # Table run: one bisect over the explicit prefix sums.
                pre_t = cur[4]
                i = cur[6]
                end = cur[7]
                off_t = cur[8]
                j = bisect(pre_t, stop_at - off_t, i, end)
                if j > i:
                    n = j - i
                    num_events += n
                    if n == 1:
                        append_row(cur[2][i])
                    else:
                        extend_rows(cur[2][i:j])
                    nbuf += n
                    if nbuf >= ring_capacity:
                        ring_flush()
                        nbuf = 0
                    ptt = off_t + pre_t[j]
                    ptf = cur[9] + cur[5][j]
                if j < end:
                    cur[6] = j
                    break
                kind = 0
                cur[1] = 0
                continue

            # No active run: start the next op.  The op index lives in
            # the cursor and is loaded only here — most rounds extend an
            # in-progress run and never touch it.  Every op consumption
            # writes it back immediately, because any of these branches
            # may leave the quantum loop.
            op_idx = cur[0]
            op = streams[tid][op_idx]
            code = op[0]
            if code == OP_TILED:
                bids = op[1]
                cache = row_caches[tid]
                rows_l = cache.get(id(bids))
                if rows_l is None:
                    rows_l = cache[id(bids)] = [
                        encode(tid, b, r) for b, r in zip(bids, op[2])
                    ]
                cur[0] = op_idx + 1
                cur[2] = rows_l
                cur[4] = op[3]
                cur[5] = op[4]
                cur[6] = 0
                cur[7] = op[5]
                cur[8] = ptt
                cur[9] = ptf
                cur[10] = op[8]
                cur[11] = op[6]
                cur[12] = op[7]
                kind = 1
                cur[1] = 1
                continue
            if code == OP_TABLE:
                bids = op[1]
                cache = row_caches[tid]
                rows_l = cache.get(id(bids))
                if rows_l is None:
                    rows_l = cache[id(bids)] = [
                        encode(tid, b, r) for b, r in zip(bids, op[2])
                    ]
                i0 = op[5]
                cur[0] = op_idx + 1
                cur[2] = rows_l
                cur[4] = op[3]
                cur[5] = op[4]
                cur[6] = i0
                cur[7] = op[6]
                cur[8] = ptt - op[3][i0]
                cur[9] = ptf - op[4][i0]
                kind = 2
                cur[1] = 2
                continue

            if code == OP_BARRIER and inline_barriers:
                # Barrier, fully inline — the exact event sequence of
                # `_handle_barrier`: enter block, arrival sync, and on
                # the last arrival a release sync + futex wake +
                # barrier exit per participant in arrival order.  No
                # out-of-line calls, so engine-state locals stay live.
                ev = op[1]
                cur[0] = op_idx + 1
                num_events += 1
                b_id = ev.barrier_id
                arrived = barriers.get(b_id)
                if arrived is None:
                    arrived = barriers[b_id] = []
                append_row(be_rows[tid])
                nbuf += 1
                ptt += be_t
                ptf += be_f
                g = self._gseq
                sb_append((tid, SYNC_BARRIER, b_id, None, g))
                g += 1
                arrived.append(tid)
                if len(arrived) == nthreads:
                    # Full release.  The last arrival is this thread
                    # (appended just above), so the release rows are
                    # the per-tid constants assembled in arrival
                    # order, last arrival's exit row at the end.
                    others = arrived[:-1]
                    for tid2 in others:
                        sb_append(
                            (tid2, SYNC_BARRIER_REL, b_id, None, g)
                        )
                        g += 1
                        threads[tid2].state = runnable_state
                        per_thread_total[tid2] += wake_t
                        per_thread_filtered[tid2] += wake_f
                    sb_append((tid, SYNC_BARRIER_REL, b_id, None, g))
                    g += 1
                    if passive:
                        rel_rows = [
                            row for t2 in others
                            for row in (fk_rows[t2], bx_rows[t2])
                        ]
                    else:
                        rel_rows = [bx_rows[t2] for t2 in others]
                    rel_rows.append(bx_rows[tid])
                    extend_rows(rel_rows)
                    ptt += bx_t
                    ptf += bx_f
                    del barriers[b_id]
                    self._gseq = g
                    runnable[:] = all_tids
                    n_run = nthreads
                    arr_stale = True
                    nbuf += rel_n
                    if nbuf >= ring_capacity:
                        ring_flush()
                        nbuf = 0
                    if len(sync_buf) >= SYNC_BUFFER_LIMIT:
                        self._flush_syncs()
                    continue
                self._gseq = g
                threads[tid].state = blocked_state
                runnable.remove(tid)
                n_run -= 1
                arr_stale = True
                if passive:
                    append_row(fw_rows[tid])
                    nbuf += 1
                    ptt += fw_t
                    ptf += fw_f
                if nbuf >= ring_capacity:
                    ring_flush()
                    nbuf = 0
                break

            if code == OP_DONE:
                # End-of-tape sentinel: the cursor stays parked on it.
                threads[tid].state = done_state
                runnable.remove(tid)
                n_run -= 1
                n_done += 1
                arr_stale = True
                break

            # Other sync op: sync engine state, dispatch through the
            # shared handlers (which may execute blocks for this and
            # other threads, and block/wake threads), reload.
            thread = threads[tid]
            per_thread_total[tid] = ptt
            per_thread_filtered[tid] = ptf
            ev = op[1]
            num_events += 1
            if code == OP_SYNC or code == OP_BARRIER:
                dispatch(thread, ev)
                cur[0] = op_idx + 1
                nbuf = len(ring_rows)
                ptt = per_thread_total[tid]
                ptf = per_thread_filtered[tid]
                if self._sched_dirty:
                    runnable[:] = [
                        t.tid for t in threads
                        if t.state is runnable_state
                    ]
                    n_run = len(runnable)
                    self._sched_dirty = False
                    arr_stale = True
                if thread.state is not runnable_state:
                    break
            elif code == OP_CHUNK:
                self._handle_chunk(thread, ev)
                nbuf = len(ring_rows)
                start = thread.response
                thread.response = None
                ptt = per_thread_total[tid]
                ptf = per_thread_filtered[tid]
                if start < 0:
                    cur[0] = op_idx + 1
                else:
                    # Grant: run the chunk's table slice, then come
                    # back to this op for the next request — exactly
                    # the generator's request/consume loop.
                    iter_off = op[6]
                    i0 = iter_off[start]
                    stop_iter = start + ev.chunk_size
                    total = ev.total_iters
                    if stop_iter > total:
                        stop_iter = total
                    i1 = iter_off[stop_iter]
                    if i1 > i0:
                        bids = op[2]
                        cache = row_caches[tid]
                        rows_l = cache.get(id(bids))
                        if rows_l is None:
                            rows_l = cache[id(bids)] = [
                                encode(tid, b, r)
                                for b, r in zip(bids, op[3])
                            ]
                        cur[2] = rows_l
                        cur[4] = op[4]
                        cur[5] = op[5]
                        cur[6] = i0
                        cur[7] = i1
                        cur[8] = ptt - op[4][i0]
                        cur[9] = ptf - op[5][i0]
                        kind = 2
                        cur[1] = 2
            else:  # OP_SINGLE
                self._handle_single(thread, ev)
                nbuf = len(ring_rows)
                granted = thread.response
                thread.response = None
                ptt = per_thread_total[tid]
                ptf = per_thread_filtered[tid]
                cur[0] = op_idx + 1
                run = op[2]
                if granted and run is not None:
                    bids = run[0]
                    cache = row_caches[tid]
                    rows_l = cache.get(id(bids))
                    if rows_l is None:
                        rows_l = cache[id(bids)] = [
                            encode(tid, b, r)
                            for b, r in zip(bids, run[1])
                        ]
                    cur[2] = rows_l
                    cur[4] = run[2]
                    cur[5] = run[3]
                    cur[6] = 0
                    cur[7] = len(run[0])
                    cur[8] = ptt
                    cur[9] = ptf
                    kind = 2
                    cur[1] = 2

        per_thread_total[tid] = ptt
        per_thread_filtered[tid] = ptf

#%if bounded
        if num_events > maxev:
            self.total_instructions = sum(per_thread_total)
            self.filtered_instructions = sum(per_thread_filtered)
            self.num_events = num_events
            raise ExecutionError(
                f"exceeded max_events={max_events}; likely runaway "
                f"program"
            )
#%endif

    return self._finish_run(num_events)
'''


def render_kernel_source(flags: Dict[str, bool]) -> str:
    """Render :data:`_KERNEL_TEMPLATE` under ``flags``.

    ``#%if NAME`` keeps its block when ``flags[NAME]`` is true, otherwise
    the ``#%else`` block (if any).  Directives must not nest.
    """
    out = []
    in_block = False
    emitting = True
    for line in _KERNEL_TEMPLATE.splitlines():
        stripped = line.strip()
        if stripped.startswith("#%if "):
            if in_block:
                raise ValueError("nested #%if in kernel template")
            in_block = True
            emitting = bool(flags[stripped[5:].strip()])
        elif stripped == "#%else":
            if not in_block:
                raise ValueError("#%else outside #%if in kernel template")
            emitting = not emitting
        elif stripped == "#%endif":
            if not in_block:
                raise ValueError("#%endif outside #%if in kernel template")
            in_block = False
            emitting = True
        elif emitting:
            out.append(line)
    if in_block:
        raise ValueError("unterminated #%if in kernel template")
    return "\n".join(out) + "\n"


#: Rendered-and-exec'd kernels, keyed by (tier, flag values).  Kernels are
#: pure functions of their key, so the cache is process-global.
_kernel_cache: Dict[Tuple, Callable] = {}


def get_kernel(
    tier: str,
    *,
    active: bool,
    flow: bool,
    bounded: bool,
    namespace: Dict[str, object],
) -> Callable:
    """The scheduler kernel for ``tier`` under this run configuration.

    ``namespace`` supplies the rendered source's globals (numpy, bisect,
    tape op codes, engine enums and errors) — passed in by the engine so
    this module never imports the engine (no cycle).  The ``reference``
    tier ignores the configuration flags: it is the single all-runtime-
    branches rendering.
    """
    if tier == "auto":
        tier = "compiled"
    if tier == "reference":
        key: Tuple = ("reference",)
        flags = {"active": True, "flow": True, "bounded": True}
    elif tier == "compiled":
        key = ("compiled", active, flow, bounded)
        flags = {"active": active, "flow": flow, "bounded": bounded}
    else:
        raise ValueError(f"unknown kernel tier {tier!r}")
    kernel = _kernel_cache.get(key)
    if kernel is None:
        source = render_kernel_source(flags)
        exec_ns = dict(namespace)
        code = compile(source, f"<repro-kernel {'-'.join(map(str, key))}>",
                       "exec")
        exec(code, exec_ns)
        kernel = exec_ns["scheduler_kernel"]
        _kernel_cache[key] = kernel
    return kernel
