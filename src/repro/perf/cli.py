"""``repro-bench``: measure the hot paths, record evidence, gate CI.

Modes:

* default — full-size scenarios, report in-process legacy/fast ratios and
  speedups against the recorded seed baseline, write ``BENCH_perf.json``.
* ``--smoke`` — shrunken scenarios for CI (seconds of wall time); ratios
  only, no seed-speedup comparison (sizes differ from the baseline's).
* ``--check`` — exit non-zero if any scenario's ratio regressed more than
  25% below the baseline's recorded ``expected_min_ratio`` floor (the
  gate threshold is ``floor * 0.75``).
* ``--report PATH`` — check a previously recorded report (the committed
  ``BENCH_perf.json``) instead of re-measuring; implies ``--check``.
* ``--strict-baseline`` — fail when the report's ``baseline_sha`` does
  not match the tree's ``baseline.json``: evidence recorded against a
  different baseline is stale and must be re-recorded.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .bench import (
    BenchError,
    default_baseline_path,
    format_summary,
    main_check,
    run_bench,
    write_report,
)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the repro pipeline's hot paths.",
    )
    ap.add_argument("--smoke", action="store_true",
                    help="shrunken CI scenarios (seconds, not minutes)")
    ap.add_argument("--check", action="store_true",
                    help="fail if ratios regress >25%% below the baseline "
                         "floors (threshold = floor * 0.75)")
    ap.add_argument("--report", type=Path, default=None,
                    help="check this previously recorded report instead "
                         "of re-measuring (implies --check)")
    ap.add_argument("--strict-baseline", action="store_true",
                    help="fail when the report's baseline_sha does not "
                         "match the tree's baseline.json")
    ap.add_argument("--reps", type=int, default=5,
                    help="repetitions per measurement (median wins)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline.json path (default: "
                         "benchmarks/perf/baseline.json)")
    ap.add_argument("--output", type=Path, default=None,
                    help="write the report JSON here "
                         "(default: BENCH_perf.json for full runs)")
    args = ap.parse_args(argv)

    baseline_path = args.baseline or default_baseline_path()
    if args.report is not None:
        try:
            report = json.loads(args.report.read_text())
        except (OSError, ValueError) as exc:
            print(f"repro-bench: cannot read report {args.report}: {exc}",
                  file=sys.stderr)
            return 2
        if report.get("schema") != "repro-bench/1":
            print(
                f"repro-bench: unrecognized report schema in "
                f"{args.report}: {report.get('schema')!r}",
                file=sys.stderr,
            )
            return 2
        return main_check(
            report, baseline_path,
            require_fresh_baseline=args.strict_baseline,
        )

    try:
        report = run_bench(
            smoke=args.smoke, reps=args.reps, baseline_path=baseline_path,
        )
    except BenchError as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return 2

    status = 0
    if args.check:
        status = main_check(
            report, baseline_path,
            require_fresh_baseline=args.strict_baseline,
        )

    output = args.output
    if output is None and not args.smoke:
        output = Path("BENCH_perf.json")
    if output is not None:
        write_report(report, output)
        print(f"wrote {output}", file=sys.stderr)

    print(format_summary(report))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
