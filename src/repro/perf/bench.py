"""The ``repro-bench`` measurement core.

Times the pipeline's hot paths in two honest ways:

* **In-process ratios** — each scenario runs its *legacy* path (per-event
  observer dispatch; broadcast k-means assignment) and its *fast* path
  (batched ring; GEMM assignment) in the same interpreter, same machine,
  same moment.  Ratios are machine-portable, which is what CI gates on:
  a ratio regressing past 25% of its recorded floor fails the build.
* **Speedups vs the recorded seed baseline** — ``baseline.json`` holds
  median walls measured from the pre-optimization seed checkout (see
  ``benchmarks/perf/measure_baseline.py`` for the recipe).  Absolute
  speedups are machine-specific, so they are reported, not gated —
  except that they are the evidence ``BENCH_perf.json`` commits to.

Scenario definitions live in ``benchmarks/perf/workloads.py`` (importable
against any revision, which is how the seed baseline was recorded); this
module loads that file by repo-relative path so there is exactly one copy
of each scenario.
"""

from __future__ import annotations

import importlib.util
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import ReproError


class BenchError(ReproError):
    """The benchmark harness cannot run (missing scenarios, bad baseline)."""


#: Fraction of a recorded ``expected_min_ratio`` a measured ratio may lose
#: before ``--check`` fails: >25% regression is a build failure.  The gate
#: therefore fires at ``floor * (1 - REGRESSION_MARGIN)`` = ``floor * 0.75``
#: — which is why a floor of 1.2 historically showed up as the mysterious
#: ``0.8999999999999999`` threshold in committed reports: that is just
#: ``1.2 * 0.75`` in binary floating point.  Thresholds are now rounded
#: before being reported (the comparison itself is unaffected: a honest
#: floor is never set within 1e-9 of a measured ratio).
REGRESSION_MARGIN = 0.25


def repo_root() -> Path:
    """The repository root, assuming the in-tree ``src`` layout."""
    return Path(__file__).resolve().parents[3]


def default_baseline_path() -> Path:
    return repo_root() / "benchmarks" / "perf" / "baseline.json"


def load_scenarios(path: Optional[Path] = None):
    """Import ``benchmarks/perf/workloads.py`` as a module, by path."""
    path = path or repo_root() / "benchmarks" / "perf" / "workloads.py"
    if not path.is_file():
        raise BenchError(
            f"scenario definitions not found at {path}; repro-bench runs "
            f"from a repository checkout (benchmarks/perf/workloads.py)"
        )
    spec = importlib.util.spec_from_file_location("repro_bench_workloads",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _median_wall(fn: Callable[[], None], reps: int) -> float:
    walls = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls)


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root(),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    try:
        dirty = subprocess.run(
            ["git", "status", "--porcelain"], cwd=repo_root(),
            capture_output=True, text=True, timeout=10,
        )
        if dirty.returncode == 0 and dirty.stdout.strip():
            sha += "-dirty"
    except (OSError, subprocess.TimeoutExpired):
        pass
    return sha


def _run_engine(build, batch_events: bool, nthreads: int, seed: int) -> int:
    from ..exec_engine.engine import ExecutionEngine
    from ..exec_engine.observers import (
        InstructionCounter,
        SyncEventLog,
        TraceCollector,
    )

    program, tp, omp = build()
    observers = (
        InstructionCounter(nthreads),
        SyncEventLog(nthreads),
        TraceCollector(limit=None),
    )
    result = ExecutionEngine(
        program, tp, omp, nthreads, observers=observers, seed=seed,
        batch_events=batch_events,
    ).run()
    return result.num_events


def bench_engine(build, reps: int, nthreads: int, seed: int) -> Dict:
    """Legacy vs batched wall for one engine scenario."""
    events = _run_engine(build, True, nthreads, seed)  # warm imports/caches
    batch_wall = _median_wall(
        lambda: _run_engine(build, True, nthreads, seed), reps
    )
    legacy_wall = _median_wall(
        lambda: _run_engine(build, False, nthreads, seed), reps
    )
    return {
        "events": events,
        "legacy_wall_seconds": legacy_wall,
        "fast_wall_seconds": batch_wall,
        "fast_events_per_second": events / batch_wall,
        "ratio": legacy_wall / batch_wall,
    }


def bench_select(matrix, weights, max_k: int, reps: int) -> Dict:
    """Broadcast-assignment (legacy) vs GEMM select_simpoints wall."""
    from ..clustering.simpoint import SimPointOptions, select_simpoints

    opts = SimPointOptions(max_k=max_k, seed=42)

    def run(mode: str):
        os.environ["REPRO_KMEANS_ASSIGN"] = mode
        try:
            select_simpoints(matrix, weights, opts)
        finally:
            os.environ.pop("REPRO_KMEANS_ASSIGN", None)

    run("gemm")  # warm
    fast_wall = _median_wall(lambda: run("gemm"), reps)
    legacy_wall = _median_wall(lambda: run("broadcast"), reps)
    return {
        "legacy_wall_seconds": legacy_wall,
        "fast_wall_seconds": fast_wall,
        "ratio": legacy_wall / fast_wall,
    }


def bench_pipeline(build, reps: int) -> Dict:
    """Offline record+profile+select (legacy) vs the live streaming pass.

    Both sides start from nothing and end with a selection: the offline
    path records, replays once for the DCFG, replays again for slicing,
    then runs the k-means/BIC sweep; the live path records with the DCFG
    builder attached and streams probe+classify+skip in a single replay.
    Detailed simulation is *stubbed* on the live side because the offline
    stages being compared exclude simulation too — but the live side
    still pays for cutting each sampled region's pinball (work the
    offline path defers to its simulate stage), so the measured ratio is
    biased against live mode, not for it.
    """
    from ..analysis.online import LiveOptions, LiveSampler
    from ..clustering.simpoint import SimPointOptions, select_simpoints
    from ..dcfg.graph import DCFGBuilder
    from ..dcfg.loops import loop_header_blocks
    from ..pinplay.recorder import record_execution
    from ..profiling.filters import FilterPolicy
    from ..profiling.profile_result import profile_pinball
    from ..timing.mcsim import SimulationResult
    from ..timing.metrics import SimMetrics

    workload, scale = build()
    slice_size = scale.slice_size(workload.nthreads)

    def offline():
        pinball, _ = record_execution(
            workload.program, workload.thread_program, workload.omp,
            workload.nthreads, seed=0,
        )
        profile = profile_pinball(workload.program, pinball, slice_size)
        select_simpoints(
            profile.bbv_matrix(), profile.slice_filtered_counts(),
            SimPointOptions(seed=42),
        )

    def stub_simulate(rp):
        cycles = max(1, rp.filtered_instructions // 2)
        return SimulationResult(
            region_id=rp.region_id,
            metrics=SimMetrics(
                cycles=cycles,
                instructions=rp.total_instructions,
                filtered_instructions=rp.filtered_instructions,
            ),
            start_cycle=0,
            end_cycle=cycles,
        )

    def live():
        builder = DCFGBuilder(workload.program, workload.nthreads)
        pinball, _ = record_execution(
            workload.program, workload.thread_program, workload.omp,
            workload.nthreads, seed=0, extra_observers=(builder,),
        )
        policy = FilterPolicy()
        markers = [
            b for b in loop_header_blocks(
                builder.result(), workload.program, main_only=True
            )
            if policy.marker_eligible(b)
        ]
        LiveSampler(
            workload.program, pinball, markers, slice_size,
            scale.warmup_instructions, stub_simulate,
            options=LiveOptions(),
        ).run()

    live()  # warm imports/caches
    live_wall = _median_wall(live, reps)
    offline_wall = _median_wall(offline, reps)
    return {
        "legacy_wall_seconds": offline_wall,
        "fast_wall_seconds": live_wall,
        "ratio": offline_wall / live_wall,
    }


def load_baseline(path: Path) -> Optional[Dict]:
    if not path.is_file():
        return None
    with open(path) as fh:
        baseline = json.load(fh)
    if baseline.get("schema") != "repro-bench-baseline/1":
        raise BenchError(
            f"unrecognized baseline schema in {path}: "
            f"{baseline.get('schema')!r}"
        )
    return baseline


def run_bench(
    smoke: bool = False,
    reps: int = 5,
    baseline_path: Optional[Path] = None,
    scenarios_path: Optional[Path] = None,
) -> Dict:
    """Measure every scenario; returns the ``BENCH_perf.json`` payload.

    ``smoke`` shrinks the scenarios for CI (seconds, not minutes).  Smoke
    sizes differ from the baseline's, so speedup-vs-seed is only computed
    for full-size runs; the in-process ratios are valid in both modes.
    """
    wl = load_scenarios(scenarios_path)
    nthreads, seed = wl.NTHREADS, wl.ENGINE_SEED
    if smoke:
        reps = min(reps, 3)
        fine = lambda: wl.build_fine_grained(outer_iters=1600)
        coarse = lambda: wl.build_coarse("train")
        matrix, weights = wl.build_select_population(n=500)
        max_k = 20
    else:
        fine = wl.build_fine_grained
        coarse = wl.build_coarse
        matrix, weights = wl.build_select_population()
        max_k = 40

    scenarios = {
        "engine_fine": bench_engine(fine, reps, nthreads, seed),
        "engine_coarse": bench_engine(coarse, reps, nthreads, seed),
        "select": bench_select(matrix, weights, max_k, reps),
        # Same size in smoke and full: one rep is already sub-second.
        "pipeline_e2e": bench_pipeline(wl.build_pipeline_workload, reps),
    }

    baseline = load_baseline(baseline_path or default_baseline_path())
    speedups = None
    if baseline is not None and not smoke:
        speedups = {}
        for name, data in scenarios.items():
            base = baseline["scenarios"].get(name)
            if base is not None:
                speedups[name] = (
                    base["wall_seconds"] / data["fast_wall_seconds"]
                )

    return {
        "schema": "repro-bench/1",
        "sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": smoke,
        "reps": reps,
        "config": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "nthreads": nthreads,
            "engine_seed": seed,
        },
        "scenarios": scenarios,
        "baseline_sha": baseline["sha"] if baseline else None,
        "speedup_vs_baseline": speedups,
    }


def check_report(
    report: Dict,
    baseline: Dict,
    *,
    require_fresh_baseline: bool = False,
) -> Dict:
    """Gate the in-process ratios against the baseline's recorded floors.

    A scenario fails when its measured legacy/fast ratio falls more than
    :data:`REGRESSION_MARGIN` below ``expected_min_ratio`` — i.e. the fast
    path regressed by >25% relative to what was recorded when the
    optimization landed (the threshold is ``floor * 0.75``).

    The verdict also audits provenance: a report whose ``baseline_sha``
    differs from the baseline's ``sha`` was recorded against a *different*
    baseline than the one now in the tree — its ratios may gate against
    floors that no longer exist.  Such a report is flagged ``stale``; with
    ``require_fresh_baseline`` the staleness is a failure (CI checks
    committed evidence this way), without it a warning.
    """
    expected = baseline.get("expected_min_ratio", {})
    checks = []
    for name, floor in sorted(expected.items()):
        data = report["scenarios"].get(name)
        if data is None:
            checks.append({
                "scenario": name, "pass": False,
                "reason": "scenario missing from this run",
            })
            continue
        threshold = round(floor * (1.0 - REGRESSION_MARGIN), 9)
        ok = data["ratio"] >= threshold
        checks.append({
            "scenario": name,
            "ratio": data["ratio"],
            "expected_min_ratio": floor,
            "threshold": threshold,
            "pass": ok,
        })
    recorded_sha = report.get("baseline_sha")
    current_sha = baseline.get("sha")
    stale = (
        recorded_sha is not None
        and current_sha is not None
        and recorded_sha != current_sha
    )
    checks.append({
        "scenario": "baseline_sha",
        "recorded": recorded_sha,
        "current": current_sha,
        "stale": stale,
        "pass": not (stale and require_fresh_baseline),
    })
    return {"checks": checks, "pass": all(c["pass"] for c in checks)}


def write_report(report: Dict, path: Path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_summary(report: Dict) -> str:
    lines = [f"repro-bench @ {report['sha'] or '?'} "
             f"({'smoke' if report['smoke'] else 'full'}, "
             f"reps={report['reps']})"]
    for name, data in report["scenarios"].items():
        extra = ""
        if report.get("speedup_vs_baseline"):
            s = report["speedup_vs_baseline"].get(name)
            if s is not None:
                extra = f"  speedup vs seed {s:.2f}x"
        lines.append(
            f"  {name:14s} legacy {data['legacy_wall_seconds']:.4f}s  "
            f"fast {data['fast_wall_seconds']:.4f}s  "
            f"ratio {data['ratio']:.2f}x{extra}"
        )
    return "\n".join(lines)


def main_check(
    report: Dict,
    baseline_path: Path,
    *,
    require_fresh_baseline: bool = False,
) -> int:
    baseline = load_baseline(baseline_path)
    if baseline is None:
        print(f"no baseline at {baseline_path}; nothing to check",
              file=sys.stderr)
        return 2
    verdict = check_report(
        report, baseline, require_fresh_baseline=require_fresh_baseline
    )
    report["check"] = verdict
    for c in verdict["checks"]:
        status = "ok" if c["pass"] else "FAIL"
        if "ratio" in c:
            print(
                f"  [{status}] {c['scenario']}: ratio "
                f"{c['ratio']:.2f}x (floor {c['expected_min_ratio']:.2f}x, "
                f"threshold {c['threshold']:.2f}x)",
                file=sys.stderr,
            )
        elif c["scenario"] == "baseline_sha":
            if c["stale"]:
                print(
                    f"  [{status}] baseline_sha: report was recorded "
                    f"against {c['recorded']!r} but the tree's baseline "
                    f"is {c['current']!r} (stale evidence — re-run "
                    f"repro-bench)",
                    file=sys.stderr,
                )
            else:
                print(
                    f"  [{status}] baseline_sha: {c['current']!r}",
                    file=sys.stderr,
                )
        else:
            print(f"  [{status}] {c['scenario']}: {c['reason']}",
                  file=sys.stderr)
    return 0 if verdict["pass"] else 1
