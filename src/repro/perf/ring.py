"""The batched event hot path: a fixed-capacity block-event ring.

Per-event observer dispatch is the wall-clock bottleneck of every
functional execution and constrained replay: each ``BlockExec`` used to be
routed one at a time through a Python ``for ob in observers`` loop, costing
several function calls and attribute chases per event.  The
:class:`EventRing` instead accumulates block events into a fixed-capacity
ring and flushes them to observers as an :class:`EventBatch` — six parallel
numpy columns ``(tid, bid, repeat, n_instr, flags, start_index)`` — so
observers can reduce whole batches with ``np.add.at``/``np.bincount``
instead of doing per-event Python work.

Ordering contract: when any attached observer sets
``needs_flush_before_sync`` (the :class:`~repro.exec_engine.observers.
Observer` base default — correct for third-party observers of unknown
ordering sensitivity), the driver must call :meth:`EventRing.flush` before
delivering any ``on_sync`` event, so observers that correlate block and
synchronization streams (the lint concurrency passes, DCFG building) see
the exact per-event order the legacy path produced.  Drivers check
:attr:`EventRing.flush_on_sync` for this.  Observers whose final state is
independent of block/sync interleaving (the built-in counters, logs and
unbounded trace collectors) clear the flag, which lets sync-dense programs
amortize batches across syncs — otherwise a program with a sync every few
blocks would flush near-empty batches and numpy fixed costs would swamp
the win.  ``on_finish`` always requires a final flush.  Within a batch,
events appear in execution order.

Observers that only implement the per-event :meth:`Observer.on_block`
callback keep working unchanged: the base class's ``on_block_batch``
replays the batch through ``on_block`` one event at a time (the
compatibility shim), so third-party observers see identical calls.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: ``flags`` column bit: the block lives in a library image (spin or
#: synchronization code, filtered out of BBV work).
FLAG_LIBRARY = 1

#: Default ring capacity (events buffered between flushes).  Large enough
#: to amortize the numpy fixed costs, small enough that a batch's columns
#: stay cache-resident.
DEFAULT_CAPACITY = 8192

#: Batches smaller than this are delivered per-event through ``on_block``
#: instead of being materialized as numpy columns: below this size the
#: fixed cost of array construction plus the argsort-based start-index
#: reconstruction exceeds plain Python dispatch.  Only order-strict
#: observer sets (``flush_on_sync`` rings flushing at every sync) ever see
#: batches this small in steady state.
SMALL_BATCH_THRESHOLD = 48


class EventBatch:
    """One flushed batch of block events as parallel numpy columns.

    ``start_index[i]`` is thread ``tid[i]``'s execution count of block
    ``bid[i]`` *before* event ``i`` — the same value the per-event path
    passes to ``on_block`` — reconstructed vectorially at flush time.
    ``blocks`` is the program's block table so shims (and observers that
    need block attributes not carried by a column) can resolve ``bid``.
    """

    __slots__ = (
        "size", "tid", "bid", "repeat", "n_instr", "flags", "start_index",
        "blocks",
    )

    def __init__(
        self,
        size: int,
        tid: np.ndarray,
        bid: np.ndarray,
        repeat: np.ndarray,
        n_instr: np.ndarray,
        flags: np.ndarray,
        start_index: np.ndarray,
        blocks: Sequence,
    ) -> None:
        self.size = size
        self.tid = tid
        self.bid = bid
        self.repeat = repeat
        self.n_instr = n_instr
        self.flags = flags
        self.start_index = start_index
        self.blocks = blocks

    @property
    def instructions(self) -> np.ndarray:
        """Per-event instruction counts (``n_instr * repeat``)."""
        return self.n_instr * self.repeat

    @property
    def is_library(self) -> np.ndarray:
        """Per-event boolean mask: block lives in a library image."""
        return (self.flags & FLAG_LIBRARY) != 0


def batch_start_indices(
    tid: np.ndarray,
    bid: np.ndarray,
    repeat: np.ndarray,
    flat_counts: np.ndarray,
    nblocks: int,
) -> np.ndarray:
    """Per-event pre-execution counts for a batch; updates ``flat_counts``.

    ``flat_counts`` is the flattened ``(nthreads * nblocks)`` execution-count
    table *before* the batch; it is advanced in place to the post-batch
    state.  Within the batch, an event's start index is the table value plus
    the sum of earlier same-``(tid, bid)`` repeats — an exclusive prefix sum
    segmented by key, computed with one stable argsort.
    """
    key = tid * nblocks + bid
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sorted_repeat = repeat[order]
    inclusive = np.cumsum(sorted_repeat)
    exclusive = inclusive - sorted_repeat
    is_group_start = np.empty(len(sorted_key), dtype=bool)
    is_group_start[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=is_group_start[1:])
    group_id = np.cumsum(is_group_start) - 1
    group_base = exclusive[is_group_start]
    within_group = exclusive - group_base[group_id]
    start_sorted = flat_counts[sorted_key] + within_group
    start = np.empty_like(start_sorted)
    start[order] = start_sorted
    # Advance the table by each key's total batch repeat: the group's last
    # inclusive sum minus its base.
    group_start_pos = np.flatnonzero(is_group_start)
    group_end_pos = np.append(group_start_pos[1:], len(sorted_key)) - 1
    flat_counts[sorted_key[group_start_pos]] += (
        inclusive[group_end_pos] - group_base
    )
    return start


class EventRing:
    """Fixed-capacity block-event ring shared by the engine and replayer.

    :meth:`append` is the per-event hot path and does the minimum possible
    work (three list appends and a capacity check); the derived columns —
    ``n_instr``, ``flags`` from per-block tables, ``start_index`` from the
    running execution-count table — materialize vectorially at flush.

    The ring owns the authoritative execution-count table while batching is
    active: drivers read it back through :meth:`exec_counts` after the final
    flush instead of maintaining per-event nested-list counts.
    """

    def __init__(
        self,
        blocks: Sequence,
        nthreads: int,
        observers: Sequence,
        capacity: int = DEFAULT_CAPACITY,
        initial_exec_counts=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.blocks = blocks
        self.nthreads = nthreads
        self.capacity = capacity
        self.observers = list(observers)
        #: Whether the driver must flush before delivering ``on_sync``.
        #: True if any observer wants strict block/sync ordering (the
        #: conservative default for observers that do not say otherwise).
        self.flush_on_sync = any(
            getattr(ob, "needs_flush_before_sync", True)
            for ob in self.observers
        )
        nblocks = len(blocks)
        self._nblocks = nblocks
        self._n_instr_by_bid = np.array(
            [b.n_instr for b in blocks], dtype=np.int64
        )
        self._flags_by_bid = np.array(
            [FLAG_LIBRARY if b.image.is_library else 0 for b in blocks],
            dtype=np.int64,
        )
        if initial_exec_counts is not None:
            self._flat_counts = np.asarray(
                initial_exec_counts, dtype=np.int64
            ).reshape(-1).copy()
            if self._flat_counts.shape[0] != nthreads * nblocks:
                raise ValueError("initial_exec_counts shape mismatch")
        else:
            self._flat_counts = np.zeros(nthreads * nblocks, dtype=np.int64)
        self._tids: List[int] = []
        self._bids: List[int] = []
        self._repeats: List[int] = []
        # Flush accounting (plain ints: incremented once per *flush*, never
        # per event, so the hot path stays inside the perf-smoke floors).
        # Drivers report these to repro.obs's active registry at end of run.
        self.flushes = 0
        self.small_flushes = 0
        self.events_flushed = 0

    def append(self, tid: int, bid: int, repeat: int) -> None:
        """Buffer one block event; flushes automatically at capacity."""
        self._tids.append(tid)
        self._bids.append(bid)
        self._repeats.append(repeat)
        if len(self._tids) >= self.capacity:
            self.flush()

    def buffers(self):
        """The three column buffers ``(tids, bids, repeats)``.

        Hot loops (the engine's inner quantum loop) bind these lists'
        ``append`` methods directly and check ``len() >= capacity``
        themselves, skipping the :meth:`append` call overhead per event.
        The lists are cleared in place by :meth:`flush`, so bound methods
        stay valid across flushes.
        """
        return self._tids, self._bids, self._repeats

    def flush(self) -> None:
        """Deliver all buffered events to the observers as one batch."""
        size = len(self._tids)
        if size == 0:
            return
        if size < SMALL_BATCH_THRESHOLD:
            self._flush_small(size)
            return
        self.flushes += 1
        self.events_flushed += size
        tid = np.array(self._tids, dtype=np.int64)
        bid = np.array(self._bids, dtype=np.int64)
        repeat = np.array(self._repeats, dtype=np.int64)
        self._tids.clear()
        self._bids.clear()
        self._repeats.clear()
        start = batch_start_indices(
            tid, bid, repeat, self._flat_counts, self._nblocks
        )
        batch = EventBatch(
            size=size,
            tid=tid,
            bid=bid,
            repeat=repeat,
            n_instr=self._n_instr_by_bid[bid],
            flags=self._flags_by_bid[bid],
            start_index=start,
            blocks=self.blocks,
        )
        for ob in self.observers:
            ob.on_block_batch(batch)

    def _flush_small(self, size: int) -> None:
        """Per-event delivery for batches too small to amortize numpy.

        Semantically identical to the batched flush (same ``on_block``
        calls the base-class shim would make, same count-table advance),
        just cheaper below :data:`SMALL_BATCH_THRESHOLD`.
        """
        self.small_flushes += 1
        self.events_flushed += size
        tids = self._tids
        bids = self._bids
        repeats = self._repeats
        blocks = self.blocks
        counts = self._flat_counts
        nblocks = self._nblocks
        observers = self.observers
        for i in range(size):
            t = tids[i]
            b = bids[i]
            r = repeats[i]
            idx = t * nblocks + b
            start = int(counts[idx])
            counts[idx] = start + r
            block = blocks[b]
            for ob in observers:
                ob.on_block(t, block, r, start)
        tids.clear()
        bids.clear()
        repeats.clear()

    def exec_counts(self) -> List[List[int]]:
        """The execution-count table as nested lists (flushes first)."""
        self.flush()
        return self._flat_counts.reshape(
            self.nthreads, self._nblocks
        ).tolist()
