"""The batched event hot path: a fixed-capacity block-event ring.

Per-event observer dispatch is the wall-clock bottleneck of every
functional execution and constrained replay: each ``BlockExec`` used to be
routed one at a time through a Python ``for ob in observers`` loop, costing
several function calls and attribute chases per event.  The
:class:`EventRing` instead accumulates block events into a fixed-capacity
ring and flushes them to observers as an :class:`EventBatch` — six parallel
numpy columns ``(tid, bid, repeat, n_instr, flags, start_index)`` — so
observers can reduce whole batches with ``np.add.at``/``np.bincount``
instead of doing per-event Python work.

Ordering contract: when any attached observer sets
``needs_flush_before_sync`` (the :class:`~repro.exec_engine.observers.
Observer` base default — correct for third-party observers of unknown
ordering sensitivity), the driver must call :meth:`EventRing.flush` before
delivering any ``on_sync`` event, so observers that correlate block and
synchronization streams (the lint concurrency passes, DCFG building) see
the exact per-event order the legacy path produced.  Drivers check
:attr:`EventRing.flush_on_sync` for this.  Observers whose final state is
independent of block/sync interleaving (the built-in counters, logs and
unbounded trace collectors) clear the flag, which lets sync-dense programs
amortize batches across syncs — otherwise a program with a sync every few
blocks would flush near-empty batches and numpy fixed costs would swamp
the win.  ``on_finish`` always requires a final flush.  Within a batch,
events appear in execution order.

Observers that only implement the per-event :meth:`Observer.on_block`
callback keep working unchanged: the base class's ``on_block_batch``
replays the batch through ``on_block`` one event at a time (the
compatibility shim), so third-party observers see identical calls.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: ``flags`` column bit: the block lives in a library image (spin or
#: synchronization code, filtered out of BBV work).
FLAG_LIBRARY = 1

#: Default ring capacity (events buffered between flushes).  Large enough
#: to amortize the numpy fixed costs, small enough that a batch's columns
#: stay cache-resident.
DEFAULT_CAPACITY = 8192

#: Batches smaller than this are delivered per-event through ``on_block``
#: instead of being materialized as numpy columns: below this size the
#: fixed cost of array construction plus the argsort-based start-index
#: reconstruction exceeds plain Python dispatch.  Only order-strict
#: observer sets (``flush_on_sync`` rings flushing at every sync) ever see
#: batches this small in steady state.
SMALL_BATCH_THRESHOLD = 48


class EventBatch:
    """One flushed batch of block events as parallel numpy columns.

    ``start_index[i]`` is thread ``tid[i]``'s execution count of block
    ``bid[i]`` *before* event ``i`` — the same value the per-event path
    passes to ``on_block`` — reconstructed vectorially at flush time.
    When no attached observer declares ``needs_start_index``, the ring
    skips the reconstruction and ``start_index`` is ``None``.
    ``blocks`` is the program's block table so shims (and observers that
    need block attributes not carried by a column) can resolve ``bid``.
    """

    __slots__ = (
        "size", "tid", "bid", "repeat", "n_instr", "flags", "start_index",
        "blocks",
    )

    def __init__(
        self,
        size: int,
        tid: np.ndarray,
        bid: np.ndarray,
        repeat: np.ndarray,
        n_instr: np.ndarray,
        flags: np.ndarray,
        start_index: np.ndarray,
        blocks: Sequence,
    ) -> None:
        self.size = size
        self.tid = tid
        self.bid = bid
        self.repeat = repeat
        self.n_instr = n_instr
        self.flags = flags
        self.start_index = start_index
        self.blocks = blocks

    @property
    def instructions(self) -> np.ndarray:
        """Per-event instruction counts (``n_instr * repeat``)."""
        return self.n_instr * self.repeat

    @property
    def is_library(self) -> np.ndarray:
        """Per-event boolean mask: block lives in a library image."""
        return (self.flags & FLAG_LIBRARY) != 0


def batch_start_indices(
    tid: np.ndarray,
    bid: np.ndarray,
    repeat: np.ndarray,
    flat_counts: np.ndarray,
    nblocks: int,
) -> np.ndarray:
    """Per-event pre-execution counts for a batch; updates ``flat_counts``.

    ``flat_counts`` is the flattened ``(nthreads * nblocks)`` execution-count
    table *before* the batch; it is advanced in place to the post-batch
    state.  Within the batch, an event's start index is the table value plus
    the sum of earlier same-``(tid, bid)`` repeats — an exclusive prefix sum
    segmented by key, computed with one stable argsort.
    """
    key = tid * nblocks + bid
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sorted_repeat = repeat[order]
    inclusive = np.cumsum(sorted_repeat)
    exclusive = inclusive - sorted_repeat
    is_group_start = np.empty(len(sorted_key), dtype=bool)
    is_group_start[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=is_group_start[1:])
    group_id = np.cumsum(is_group_start) - 1
    group_base = exclusive[is_group_start]
    within_group = exclusive - group_base[group_id]
    start_sorted = flat_counts[sorted_key] + within_group
    start = np.empty_like(start_sorted)
    start[order] = start_sorted
    # Advance the table by each key's total batch repeat: the group's last
    # inclusive sum minus its base.
    group_start_pos = np.flatnonzero(is_group_start)
    group_end_pos = np.append(group_start_pos[1:], len(sorted_key)) - 1
    flat_counts[sorted_key[group_start_pos]] += (
        inclusive[group_end_pos] - group_base
    )
    return start


class EventRing:
    """Fixed-capacity block-event ring shared by the engine and replayer.

    :meth:`append` is the per-event hot path and does the minimum possible
    work (one interning lookup, one list append and a capacity check); the
    per-event columns — ``tid``/``bid``/``repeat`` decoded through per-code
    tables, ``n_instr``/``flags`` from per-block tables, ``start_index``
    from the running execution-count table — materialize vectorially at
    flush.

    The ring owns the authoritative execution-count table while batching is
    active: drivers read it back through :meth:`exec_counts` after the final
    flush instead of maintaining per-event nested-list counts.
    """

    def __init__(
        self,
        blocks: Sequence,
        nthreads: int,
        observers: Sequence,
        capacity: int = DEFAULT_CAPACITY,
        initial_exec_counts=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.blocks = blocks
        self.nthreads = nthreads
        self.capacity = capacity
        self.observers = list(observers)
        #: Whether the driver must flush before delivering ``on_sync``.
        #: True if any observer wants strict block/sync ordering (the
        #: conservative default for observers that do not say otherwise).
        self.flush_on_sync = any(
            getattr(ob, "needs_flush_before_sync", True)
            for ob in self.observers
        )
        #: Whether any observer reads ``EventBatch.start_index``.  When
        #: none does (every built-in batch consumer stores or reduces the
        #: raw columns), flush skips the argsort-based reconstruction and
        #: advances the count table with a scatter-add; the batch then
        #: carries ``start_index=None``.
        self.need_start_index = any(
            getattr(ob, "needs_start_index", True)
            for ob in self.observers
        )
        nblocks = len(blocks)
        self._nblocks = nblocks
        self._n_instr_by_bid = np.array(
            [b.n_instr for b in blocks], dtype=np.int64
        )
        self._flags_by_bid = np.array(
            [FLAG_LIBRARY if b.image.is_library else 0 for b in blocks],
            dtype=np.int64,
        )
        if initial_exec_counts is not None:
            self._flat_counts = np.asarray(
                initial_exec_counts, dtype=np.int64
            ).reshape(-1).copy()
            if self._flat_counts.shape[0] != nthreads * nblocks:
                raise ValueError("initial_exec_counts shape mismatch")
        else:
            self._flat_counts = np.zeros(nthreads * nblocks, dtype=np.int64)
        # Row interning: the event stream is massively repetitive (a
        # handful of distinct ``(tid, bid, repeat)`` rows cover a whole
        # run), so the buffer holds small integer *codes* instead of
        # tuples and the per-event columns decode at flush time through
        # tiny per-code lookup tables — one ``np.fromiter`` over the
        # codes instead of three over raw columns.
        self._codes: List[int] = []
        self._code_of: dict = {}
        self._code_rows: List[tuple] = []
        self._tab_len = 0
        self._tab_tid = self._tab_bid = self._tab_rep = None
        self._tab_key = self._tab_ninstr = self._tab_flags = None
        # Flush accounting (plain ints: incremented once per *flush*, never
        # per event, so the hot path stays inside the perf-smoke floors).
        # Drivers report these to repro.obs's active registry at end of run.
        self.flushes = 0
        self.small_flushes = 0
        self.events_flushed = 0

    def encode(self, tid: int, bid: int, repeat: int) -> int:
        """The interning code for one ``(tid, bid, repeat)`` row.

        Codes are assigned densely in first-seen order; the decode
        tables grow lazily and the cached numpy views are rebuilt at
        the next flush that observes growth.
        """
        key = (tid, bid, repeat)
        code = self._code_of.get(key)
        if code is None:
            code = len(self._code_rows)
            self._code_of[key] = code
            self._code_rows.append(key)
        return code

    def append(self, tid: int, bid: int, repeat: int) -> None:
        """Buffer one block event; flushes automatically at capacity."""
        self._codes.append(self.encode(tid, bid, repeat))
        if len(self._codes) >= self.capacity:
            self.flush()

    def buffers(self):
        """The event buffer: one interned row *code* per event.

        Hot loops (the engine's inner quantum loop, the replayer) bind
        this list's ``append``/``extend`` directly and check
        ``len() >= capacity`` themselves, skipping the :meth:`append`
        call overhead per event.  Codes come from :meth:`encode`; the
        tape scheduler interns a whole pattern's code list once per
        ``(pattern, tid)`` and emits a consume window with a single
        ``extend`` — one C call per window, and flush decodes columns
        through per-code tables instead of converting three raw
        columns event by event.  The list is cleared in place by
        :meth:`flush`, so bound methods stay valid across flushes.
        """
        return self._codes

    def _rebuild_tables(self) -> None:
        rows = self._code_rows
        n = len(rows)
        tids, bids, reps = zip(*rows)
        self._tab_tid = np.fromiter(tids, np.int64, n)
        self._tab_bid = np.fromiter(bids, np.int64, n)
        self._tab_rep = np.fromiter(reps, np.int64, n)
        self._tab_key = self._tab_tid * self._nblocks + self._tab_bid
        self._tab_ninstr = self._n_instr_by_bid[self._tab_bid]
        self._tab_flags = self._flags_by_bid[self._tab_bid]
        self._tab_len = n

    def flush(self) -> None:
        """Deliver all buffered events to the observers as one batch."""
        codes = self._codes
        size = len(codes)
        if size == 0:
            return
        if size < SMALL_BATCH_THRESHOLD:
            self._flush_small(size)
            return
        self.flushes += 1
        self.events_flushed += size
        if self._tab_len != len(self._code_rows):
            self._rebuild_tables()
        arr = np.fromiter(codes, np.int64, size)
        codes.clear()
        tid = self._tab_tid[arr]
        bid = self._tab_bid[arr]
        repeat = self._tab_rep[arr]
        if self.need_start_index:
            start = batch_start_indices(
                tid, bid, repeat, self._flat_counts, self._nblocks
            )
        else:
            # No attached observer reads per-event start indices: advance
            # the count table directly (bit-identical post-batch counts).
            # Per-code histogram first: the scatter-add then runs over
            # the handful of distinct codes, not the whole batch.
            hist = np.bincount(arr, minlength=self._tab_len)
            np.add.at(
                self._flat_counts, self._tab_key, hist * self._tab_rep
            )
            start = None
        batch = EventBatch(
            size=size,
            tid=tid,
            bid=bid,
            repeat=repeat,
            n_instr=self._tab_ninstr[arr],
            flags=self._tab_flags[arr],
            start_index=start,
            blocks=self.blocks,
        )
        for ob in self.observers:
            ob.on_block_batch(batch)

    def _flush_small(self, size: int) -> None:
        """Per-event delivery for batches too small to amortize numpy.

        Semantically identical to the batched flush (same ``on_block``
        calls the base-class shim would make, same count-table advance),
        just cheaper below :data:`SMALL_BATCH_THRESHOLD`.
        """
        self.small_flushes += 1
        self.events_flushed += size
        codes = self._codes
        rows = self._code_rows
        blocks = self.blocks
        counts = self._flat_counts
        nblocks = self._nblocks
        observers = self.observers
        for c in codes:
            t, b, r = rows[c]
            idx = t * nblocks + b
            start = int(counts[idx])
            counts[idx] = start + r
            block = blocks[b]
            for ob in observers:
                ob.on_block(t, block, r, start)
        codes.clear()

    def exec_counts(self) -> List[List[int]]:
        """The execution-count table as nested lists (flushes first)."""
        self.flush()
        return self._flat_counts.reshape(
            self.nthreads, self._nblocks
        ).tolist()
