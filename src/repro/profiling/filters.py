"""Filtering rules: what counts as work, what may bound a region.

Section IV-F of the paper: "we ignore the entire code from the relevant
synchronization library (libiomp5.so in our case)" during BBV profiling, and
Sec. III-B: regions may end "only at a loop entry that is present in the main
image of the application".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..isa.blocks import BasicBlock


class FilterPolicy:
    """Image-based (plus optional routine-based) filtering."""

    def __init__(self, exclude_routines: Iterable[str] = ()) -> None:
        self.exclude_routines: FrozenSet[str] = frozenset(exclude_routines)

    def counts_as_work(self, block: BasicBlock) -> bool:
        """True if this block's instructions count toward work done."""
        if block.image.is_library:
            return False
        routine = block.routine
        return routine is None or routine.name not in self.exclude_routines

    def marker_eligible(self, block: BasicBlock) -> bool:
        """True if this block may serve as a region boundary.

        It must be a loop header doing countable work in the main image —
        spin loops live in library images and are excluded wholesale.
        """
        return block.is_loop_header and self.counts_as_work(block)
