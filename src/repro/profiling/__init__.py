"""Profiling: BBV collection, (PC, count) markers, loop-aligned slicing."""

from .markers import Marker, MarkerTracker
from .filters import FilterPolicy
from .bbv import BBVCollector
from .slicer import LoopAlignedSlicer, Slice
from .profile_result import ProfileData, profile_pinball
from .stability import RegionStability, StabilityReport, analyze_stability

__all__ = [
    "Marker",
    "MarkerTracker",
    "FilterPolicy",
    "BBVCollector",
    "LoopAlignedSlicer",
    "Slice",
    "ProfileData",
    "profile_pinball",
    "RegionStability",
    "StabilityReport",
    "analyze_stability",
]
