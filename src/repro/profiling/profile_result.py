"""The complete up-front analysis of one recorded execution.

``profile_pinball`` is the paper's one-time analysis step (Sec. III): replay
the whole-program pinball to build the DCFG and find worker-loop headers,
then replay again slicing at those loop entries while collecting filtered,
per-thread-concatenated BBVs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..dcfg.graph import build_dcfg_from_pinball
from ..dcfg.loops import loop_header_blocks
from ..errors import ProfilingError
from ..isa.blocks import BasicBlock
from ..isa.image import Program
from ..pinplay.pinball import Pinball
from ..pinplay.replayer import ConstrainedReplayer
from ..resilience import PROFILE_DIVERGENCE, maybe_inject
from .filters import FilterPolicy
from .slicer import LoopAlignedSlicer, Slice


@dataclass
class ProfileData:
    """Everything region selection needs."""

    program_name: str
    nthreads: int
    slice_size: int
    slices: List[Slice]
    marker_pcs: List[int]
    total_instructions: int
    filtered_instructions: int

    def __post_init__(self) -> None:
        if not self.slices:
            raise ProfilingError("profile produced no slices")

    def bbv_matrix(self) -> np.ndarray:
        """Stacked slice BBVs, shape ``(num_slices, dim)``."""
        return np.vstack([s.bbv for s in self.slices])

    def slice_filtered_counts(self) -> np.ndarray:
        return np.array(
            [s.filtered_instructions for s in self.slices], dtype=np.float64
        )

    @property
    def num_slices(self) -> int:
        return len(self.slices)


def profile_pinball(
    program: Program,
    pinball: Pinball,
    slice_size: int,
    filter_policy: Optional[FilterPolicy] = None,
    marker_blocks: Optional[Sequence[BasicBlock]] = None,
    phase_aligned: bool = False,
) -> ProfileData:
    """Run the full up-front analysis on a recorded execution.

    ``marker_blocks`` defaults to the worker-loop headers discovered by the
    DCFG pass (main-image natural-loop headers) — pass them explicitly to
    experiment with alternative boundary sets.
    """
    maybe_inject(PROFILE_DIVERGENCE, f"profile:{program.name}")
    policy = filter_policy or FilterPolicy()
    if marker_blocks is None:
        dcfg = build_dcfg_from_pinball(program, pinball)
        marker_blocks = [
            b for b in loop_header_blocks(dcfg, program, main_only=True)
            if policy.marker_eligible(b)
        ]
    if not marker_blocks:
        raise ProfilingError(
            f"no marker-eligible loop headers found in {program.name!r}"
        )
    slicer = LoopAlignedSlicer(
        nthreads=pinball.nthreads,
        nblocks=program.num_blocks,
        marker_blocks=marker_blocks,
        slice_size=slice_size,
        filter_policy=policy,
        phase_aligned=phase_aligned,
    )
    result = ConstrainedReplayer(
        program, pinball, observers=(slicer,)
    ).run()
    return ProfileData(
        program_name=program.name,
        nthreads=pinball.nthreads,
        slice_size=slice_size,
        slices=slicer.slices,
        marker_pcs=sorted(b.pc for b in marker_blocks),
        total_instructions=result.total_instructions,
        filtered_instructions=result.filtered_instructions,
    )
