"""Automated stable-region analysis.

Section V-A.1 of the paper: "not all region boundaries specified using
(PC, count) can provide stable regions ... We assume that the users can
choose the appropriate stable regions, and that, while straight-forward to
accomplish in an automated way, we leave that analysis to future work."

This module is that analysis.  A region is *stable* when the relative order
of its boundary-marker crossings is the same in every execution: if the
start marker of one region can overtake the end marker of another under a
different interleaving, region contents shift between runs.  We verify
stability empirically: record several executions under different host
seeds (and optionally the other wait policy), profile each, and check that

1. every marker `(PC, count)` boundary re-occurs with identical counts, and
2. the *interleaving margin* — how far apart consecutive boundary crossings
   are in global filtered instructions — exceeds the maximum observed
   inter-thread drift, so no realistic schedule can reorder them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ProfilingError
from ..exec_engine.flowcontrol import FlowControl
from ..isa.image import Program
from ..pinplay.recorder import record_execution
from ..policy import WaitPolicy
from ..runtime.omp import OmpRuntime
from ..runtime.thread import ThreadProgram
from .profile_result import ProfileData, profile_pinball


@dataclass
class RegionStability:
    """Verdict for one slice boundary."""

    slice_index: int
    marker_pc: Optional[int]
    marker_count: Optional[int]
    #: Boundary re-occurred identically in every profiled execution.
    reproducible: bool
    #: Global filtered-instruction gap to the nearest other boundary of a
    #: *different* marker PC; small gaps are vulnerable to reordering.
    crossing_margin: int

    def is_stable(self, drift_bound: int) -> bool:
        return self.reproducible and self.crossing_margin >= drift_bound


@dataclass
class StabilityReport:
    """Outcome of the multi-execution stability analysis."""

    regions: List[RegionStability]
    executions: int
    #: Largest inter-thread progress drift observed across recordings.
    drift_bound: int

    @property
    def stable_fraction(self) -> float:
        if not self.regions:
            return 1.0
        stable = sum(1 for r in self.regions if r.is_stable(self.drift_bound))
        return stable / len(self.regions)

    def unstable_slices(self) -> List[int]:
        return [
            r.slice_index for r in self.regions
            if not r.is_stable(self.drift_bound)
        ]


def analyze_stability(
    program: Program,
    thread_program: ThreadProgram,
    omp: OmpRuntime,
    nthreads: int,
    slice_size: int,
    *,
    seeds: Sequence[int] = (0, 101, 202),
    wait_policies: Sequence[WaitPolicy] = (WaitPolicy.ACTIVE,),
    flow_window: int = 1500,
) -> StabilityReport:
    """Profile several independent recordings and cross-check boundaries."""
    if not seeds:
        raise ProfilingError("need at least one seed")
    profiles: List[ProfileData] = []
    for policy in wait_policies:
        for seed in seeds:
            pinball, _ = record_execution(
                program, thread_program, omp, nthreads,
                wait_policy=policy, seed=seed,
                flow_control=FlowControl(flow_window),
            )
            profiles.append(profile_pinball(program, pinball, slice_size))

    reference = profiles[0]
    # Drift bound: the flow-control window bounds recording drift; the
    # unconstrained simulation drift is bounded by a few scheduling quanta.
    # Use twice the window per thread as the conservative envelope.
    drift_bound = 2 * flow_window

    regions: List[RegionStability] = []
    boundaries = [
        (s.index, s.end, s.start_filtered + s.filtered_instructions)
        for s in reference.slices
    ]
    for index, marker, coordinate in boundaries:
        if marker is None:
            regions.append(
                RegionStability(index, None, None, True, 1 << 62)
            )
            continue
        reproducible = all(
            index < p.num_slices and p.slices[index].end == marker
            for p in profiles[1:]
        )
        # Margin to the nearest boundary with a *different* marker PC:
        # same-PC boundaries are totally ordered by their counts and can
        # never reorder; cross-PC boundaries can.
        margin = 1 << 62
        for other_index, other_marker, other_coord in boundaries:
            if other_index == index or other_marker is None:
                continue
            if other_marker.pc == marker.pc:
                continue
            margin = min(margin, abs(other_coord - coordinate))
        regions.append(
            RegionStability(
                slice_index=index,
                marker_pc=marker.pc,
                marker_count=marker.count,
                reproducible=reproducible,
                crossing_margin=margin,
            )
        )
    return StabilityReport(
        regions=regions,
        executions=len(profiles),
        drift_bound=drift_bound,
    )
