"""(PC, count) region markers.

Section III-C of the paper: a region's start and end are each an ordered
pair ``(PC, count)`` where PC is a loop-header instruction in the main image
and ``count`` is the *global* execution count of that PC.  Counts of worker
loops are invariant across executions of an unmodified program on a fixed
input, even when spin-loop instruction counts vary — which is why these
markers stay valid simulation points where raw instruction counts do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..errors import RegionError
from ..isa.blocks import BasicBlock


@dataclass(frozen=True)
class Marker:
    """One region boundary: the ``count``-th execution of the block at ``pc``.

    ``count`` is zero-based: ``Marker(pc, 5)`` names the moment just before
    the 6th execution of ``pc`` begins.
    """

    pc: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise RegionError(f"marker count must be >= 0, got {self.count}")

    def __str__(self) -> str:
        return f"({self.pc:#x}, {self.count})"


class MarkerTracker:
    """Tracks global execution counts of a set of marker PCs.

    Drivers feed it every block execution; it answers "did marker M just
    trigger?".  Used both by the slicer (to place boundaries) and by the
    timing simulator (to find region start/end during fast-forward).
    """

    def __init__(self, marker_blocks: Iterable[BasicBlock]) -> None:
        self._counts: Dict[int, int] = {}
        self._by_bid: Dict[int, int] = {}
        for block in marker_blocks:
            if block.pc in self._counts and block.bid not in self._by_bid:
                # Two distinct blocks sharing one PC would silently merge
                # their counts into one slot, corrupting every (PC, count)
                # marker at that address.
                raise RegionError(
                    f"marker blocks {block.name!r} (bid {block.bid}) and an "
                    f"earlier block share pc {block.pc:#x}; markers must "
                    f"map one PC to one block"
                )
            self._counts[block.pc] = 0
            self._by_bid[block.bid] = block.pc

    def is_marker_bid(self, bid: int) -> bool:
        return bid in self._by_bid

    def count(self, pc: int) -> int:
        try:
            return self._counts[pc]
        except KeyError:
            raise RegionError(f"pc {pc:#x} is not a tracked marker") from None

    def record(self, bid: int, repeat: int = 1) -> Optional[int]:
        """Record ``repeat`` executions of block ``bid``.

        Returns the pre-execution count if ``bid`` is a marker, else None.
        """
        pc = self._by_bid.get(bid)
        if pc is None:
            return None
        before = self._counts[pc]
        self._counts[pc] = before + repeat
        return before

    def snapshot(self) -> Dict[int, int]:
        """Current counts, keyed by PC."""
        return dict(self._counts)

    def sync(self, counts: Dict[int, int]) -> None:
        """Jump tracked counts forward to a later cut's values.

        A fast-forwarded replay advances past marker executions without
        delivering them; the skip accounting knows the true global
        counts at the landing cut and resyncs the tracker here.  PCs
        this tracker does not follow are ignored.
        """
        for pc, count in counts.items():
            if pc in self._counts:
                self._counts[pc] = count
