"""Basic Block Vectors, per thread, concatenated globally.

Section III-B of the paper: per-region BBVs of each thread are concatenated
into a longer global BBV so that regions with the same total work but
different thread balance land in different clusters (heterogeneous apps like
657.xz_s.2).  Counts are instruction-weighted, as in SimPoint, and library
(spin/synchronization) code is filtered out entirely.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ProfilingError
from ..isa.blocks import BasicBlock
from .filters import FilterPolicy


class BBVCollector:
    """Accumulates one interval's concatenated per-thread BBV."""

    def __init__(
        self,
        nthreads: int,
        nblocks: int,
        filter_policy: Optional[FilterPolicy] = None,
    ) -> None:
        if nthreads < 1 or nblocks < 1:
            raise ProfilingError("need nthreads >= 1 and nblocks >= 1")
        self.nthreads = nthreads
        self.nblocks = nblocks
        self.filter_policy = filter_policy or FilterPolicy()
        self._matrix = np.zeros((nthreads, nblocks), dtype=np.float64)
        self._per_thread_instructions = [0] * nthreads

    def add(self, tid: int, block: BasicBlock, repeat: int) -> None:
        """Record ``repeat`` executions of ``block`` on ``tid`` (if countable)."""
        if not self.filter_policy.counts_as_work(block):
            return
        weight = block.n_instr * repeat
        self._matrix[tid, block.bid] += weight
        self._per_thread_instructions[tid] += weight

    @property
    def per_thread_instructions(self) -> List[int]:
        return list(self._per_thread_instructions)

    @property
    def total_instructions(self) -> int:
        return sum(self._per_thread_instructions)

    def emit(self) -> np.ndarray:
        """The concatenated global BBV; resets the accumulator."""
        vector = self._matrix.reshape(-1).copy()
        self._matrix[:] = 0.0
        self._per_thread_instructions = [0] * self.nthreads
        return vector

    @property
    def dimension(self) -> int:
        return self.nthreads * self.nblocks
