"""Basic Block Vectors, per thread, concatenated globally.

Section III-B of the paper: per-region BBVs of each thread are concatenated
into a longer global BBV so that regions with the same total work but
different thread balance land in different clusters (heterogeneous apps like
657.xz_s.2).  Counts are instruction-weighted, as in SimPoint, and library
(spin/synchronization) code is filtered out entirely.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ProfilingError
from ..isa.blocks import BasicBlock
from .filters import FilterPolicy


class BBVCollector:
    """Accumulates one interval's concatenated per-thread BBV."""

    def __init__(
        self,
        nthreads: int,
        nblocks: int,
        filter_policy: Optional[FilterPolicy] = None,
    ) -> None:
        if nthreads < 1 or nblocks < 1:
            raise ProfilingError("need nthreads >= 1 and nblocks >= 1")
        self.nthreads = nthreads
        self.nblocks = nblocks
        self.filter_policy = filter_policy or FilterPolicy()
        self._matrix = np.zeros((nthreads, nblocks), dtype=np.float64)
        self._per_thread_instructions = [0] * nthreads
        # Lazily built per-bid tables for the batched path (see work_tables).
        self._countable: Optional[np.ndarray] = None
        self._weight_by_bid: Optional[np.ndarray] = None

    def add(self, tid: int, block: BasicBlock, repeat: int) -> None:
        """Record ``repeat`` executions of ``block`` on ``tid`` (if countable)."""
        if not self.filter_policy.counts_as_work(block):
            return
        weight = block.n_instr * repeat
        self._matrix[tid, block.bid] += weight
        self._per_thread_instructions[tid] += weight

    def work_tables(self, blocks):
        """Per-bid ``(n_instr, countable)`` tables for vectorized consumers.

        Built once from the program's block table; exactness of the batched
        accumulation follows because all weights are integers (float64 adds
        of integers are order-independent below 2**53).
        """
        if self._countable is None:
            if len(blocks) != self.nblocks:
                raise ProfilingError(
                    f"block table has {len(blocks)} blocks, collector "
                    f"expects {self.nblocks}"
                )
            policy = self.filter_policy
            self._weight_by_bid = np.array(
                [b.n_instr for b in blocks], dtype=np.int64
            )
            self._countable = np.array(
                [policy.counts_as_work(b) for b in blocks], dtype=bool
            )
        return self._weight_by_bid, self._countable

    def add_batch(
        self,
        tids: np.ndarray,
        bids: np.ndarray,
        repeats: np.ndarray,
        blocks,
    ) -> None:
        """Vectorized :meth:`add` over parallel event columns.

        Equivalent to calling :meth:`add` once per event in order; the
        scatter-add goes through ``np.add.at`` so duplicate ``(tid, bid)``
        pairs within one batch accumulate correctly.
        """
        n_instr, countable = self.work_tables(blocks)
        mask = countable[bids]
        if not mask.any():
            return
        t = tids[mask]
        b = bids[mask]
        w = n_instr[b] * repeats[mask]
        np.add.at(self._matrix, (t, b), w)
        per_thread = np.bincount(t, weights=w, minlength=self.nthreads)
        for tid in np.flatnonzero(per_thread):
            self._per_thread_instructions[tid] += int(per_thread[tid])

    @property
    def per_thread_instructions(self) -> List[int]:
        return list(self._per_thread_instructions)

    @property
    def total_instructions(self) -> int:
        return sum(self._per_thread_instructions)

    def peek(self) -> np.ndarray:
        """The concatenated global BBV so far, without resetting.

        Live classification inspects a probe prefix mid-slice; the
        accumulator keeps filling if the region turns out novel.
        """
        return self._matrix.reshape(-1).copy()

    def emit(self) -> np.ndarray:
        """The concatenated global BBV; resets the accumulator."""
        vector = self._matrix.reshape(-1).copy()
        self._matrix[:] = 0.0
        self._per_thread_instructions = [0] * self.nthreads
        return vector

    @property
    def dimension(self) -> int:
        return self.nthreads * self.nblocks
