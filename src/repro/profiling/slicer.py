"""Loop-aligned slicing of an execution into candidate regions.

Section III-B of the paper: slices target ``N x slice_size`` global filtered
instructions for an ``N``-thread run; "the end of a region specified by a BBV
is the next loop entry once the instruction-count target is achieved", where
eligible loop entries are worker loops in the main image.  Each boundary is
a :class:`~repro.profiling.markers.Marker` — a ``(PC, count)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ProfilingError
from ..exec_engine.observers import Observer
from ..isa.blocks import BasicBlock
from .bbv import BBVCollector
from .filters import FilterPolicy
from .markers import Marker, MarkerTracker


@dataclass
class Slice:
    """One profiled interval.

    ``start``/``end`` of ``None`` mean program start/end.  ``start_filtered``
    is the global filtered-instruction coordinate where the slice begins
    (used later to place warmup for region checkpoints).
    """

    index: int
    start: Optional[Marker]
    end: Optional[Marker]
    bbv: np.ndarray
    filtered_instructions: int
    total_instructions: int
    per_thread_filtered: List[int]
    start_filtered: int
    #: Live mode only: the replay fast-forwarded over this slice's tail,
    #: so ``bbv`` holds just the probe prefix while the instruction
    #: counters are exact (skip accounting is lossless for counts).
    extrapolated: bool = False

    @property
    def imbalance(self) -> float:
        """Max/mean ratio of per-thread filtered work (Fig. 3's quantity)."""
        mean = np.mean(self.per_thread_filtered)
        if mean == 0:
            return 0.0
        return float(np.max(self.per_thread_filtered) / mean)


class LoopAlignedSlicer(Observer):
    """Observer that cuts slices at worker-loop entries.

    Attach to a :class:`~repro.pinplay.replayer.ConstrainedReplayer` (the
    reproducible analysis run); after :meth:`on_finish`, ``slices`` holds the
    full partition of the execution.
    """

    def __init__(
        self,
        nthreads: int,
        nblocks: int,
        marker_blocks: Sequence[BasicBlock],
        slice_size: int,
        filter_policy: Optional[FilterPolicy] = None,
        phase_aligned: bool = False,
        min_slice_fraction: float = 0.4,
    ) -> None:
        """``phase_aligned`` enables variable-length intervals (Sec. III-B:
        "the methodology can also be used with varying length intervals"):
        a slice may close *early* — once it holds at least
        ``min_slice_fraction`` of the target — when execution enters a loop
        whose routine differs from the slice's dominant routine, i.e. at a
        software phase marker in the sense of Lau et al. [19]."""
        if slice_size <= 0:
            raise ProfilingError(f"slice_size must be positive, got {slice_size}")
        if not 0.0 < min_slice_fraction <= 1.0:
            raise ProfilingError("min_slice_fraction must be in (0, 1]")
        policy = filter_policy or FilterPolicy()
        for block in marker_blocks:
            if not policy.marker_eligible(block):
                raise ProfilingError(
                    f"block {block.name!r} is not marker-eligible "
                    f"(library or not a loop header)"
                )
        self.slice_size = slice_size
        self.filter_policy = policy
        self.phase_aligned = phase_aligned
        self.min_slice_size = int(slice_size * min_slice_fraction)
        self.tracker = MarkerTracker(marker_blocks)
        self.bbv = BBVCollector(nthreads, nblocks, policy)
        self.slices: List[Slice] = []
        self._slice_start: Optional[Marker] = None
        self._slice_filtered = 0
        self._slice_total = 0
        self._global_filtered = 0
        self._finished = False
        # Phase tracking: instruction mass per routine within the slice.
        self._routine_mass: dict = {}
        # The slicer never consumes sync events, so batches need not be cut
        # at sync boundaries (see EventRing's ordering contract); marker
        # ordering within the block stream is preserved by segmentation.
        self.needs_flush_before_sync = False
        self._marker_bids: Optional[np.ndarray] = None

    # -- observer interface ---------------------------------------------------

    def on_block(self, tid: int, block, repeat: int, start_index: int) -> None:
        # A marker execution closes the current slice if the target was met
        # (or, in phase-aligned mode, if this marker is a phase change and
        # the slice is big enough); the marker execution itself belongs to
        # the *next* slice.
        before = self.tracker.record(block.bid, repeat)
        if before is not None:
            if self._slice_filtered >= self.slice_size or (
                self.phase_aligned
                and self._slice_filtered >= self.min_slice_size
                and self._is_phase_change(block)
            ):
                self._close_slice(Marker(block.pc, before))
        n = block.n_instr * repeat
        self._slice_total += n
        if self.filter_policy.counts_as_work(block):
            self._slice_filtered += n
            self._global_filtered += n
            if self.phase_aligned and block.routine is not None:
                key = block.routine.name
                self._routine_mass[key] = self._routine_mass.get(key, 0) + n
        self.bbv.add(tid, block, repeat)

    def on_block_batch(self, batch) -> None:
        """Batched :meth:`on_block`: vectorize the runs between markers.

        Slice boundaries can only occur at marker executions, so everything
        between two markers is order-free accumulation — those runs reduce
        vectorially through :meth:`BBVCollector.add_batch`, while each
        marker event replays through the scalar path to keep the exact
        close-slice semantics.  Phase-aligned mode tracks per-routine mass
        on every countable event, so it keeps the per-event shim.
        """
        if self.phase_aligned:
            super().on_block_batch(batch)
            return
        if self._marker_bids is None:
            self._marker_bids = np.array(
                sorted(
                    bid for bid in range(len(batch.blocks))
                    if self.tracker.is_marker_bid(bid)
                ),
                dtype=np.int64,
            )
        bids = batch.bid
        is_marker = np.isin(bids, self._marker_bids)
        if not is_marker.any():
            self._consume_plain(batch.tid, bids, batch.repeat, batch.blocks)
            return
        tids = batch.tid
        repeats = batch.repeat
        starts = batch.start_index
        blocks = batch.blocks
        prev = 0
        for p in np.flatnonzero(is_marker):
            if p > prev:
                run = slice(prev, p)
                self._consume_plain(
                    tids[run], bids[run], repeats[run], blocks
                )
            i = int(p)
            self.on_block(
                int(tids[i]), blocks[int(bids[i])], int(repeats[i]),
                int(starts[i]),
            )
            prev = i + 1
        if prev < batch.size:
            run = slice(prev, batch.size)
            self._consume_plain(tids[run], bids[run], repeats[run], blocks)

    def _consume_plain(self, tids, bids, repeats, blocks) -> None:
        """Accumulate a marker-free run of events into the open slice."""
        n_instr, countable = self.bbv.work_tables(blocks)
        per_event = n_instr[bids] * repeats
        self._slice_total += int(per_event.sum())
        filtered = int(per_event[countable[bids]].sum())
        self._slice_filtered += filtered
        self._global_filtered += filtered
        self.bbv.add_batch(tids, bids, repeats, blocks)

    def _is_phase_change(self, block) -> bool:
        """True when this loop entry belongs to a routine other than the
        slice's dominant routine — a software phase marker."""
        if not self._routine_mass or block.routine is None:
            return False
        dominant = max(self._routine_mass, key=self._routine_mass.get)
        return block.routine.name != dominant

    def on_finish(self) -> None:
        if self._finished:
            raise ProfilingError("slicer finished twice")
        self._finished = True
        if self._slice_total > 0 or not self.slices:
            self._close_slice(None)

    # -- live-mode hooks --------------------------------------------------------

    def live_peek_bbv(self) -> np.ndarray:
        """The open slice's BBV so far, without closing or resetting.

        Live classification reads the probe prefix here; a novel verdict
        keeps replaying into the same accumulator, so the peek must not
        consume it.
        """
        return self.bbv.peek()

    def live_close_at(self, end: Marker) -> Slice:
        """Close the open slice at a marker cut the replay stopped at.

        The marker execution itself has not been delivered (an ``until``
        stop lands just before it) and belongs to the next slice — the
        exact arrangement :meth:`on_block` produces when the marker event
        arrives, so closing here instead is bit-identical.
        """
        if self._finished:
            raise ProfilingError("slicer already finished")
        self._close_slice(end)
        return self.slices[-1]

    def live_close_skipped(
        self,
        end: Optional[Marker],
        *,
        filtered_instructions: int,
        total_instructions: int,
        per_thread_filtered: List[int],
        marker_counts: dict,
    ) -> Slice:
        """Close the open slice whose tail the replay fast-forwarded over.

        The skip delivered no events, so the accumulator holds only the
        probe prefix; the exact instruction counters come from the skip
        accounting, and the tracker jumps to the end cut's global marker
        counts (the skipped executions happened, they just went unseen).
        """
        if self._finished:
            raise ProfilingError("slicer already finished")
        self._global_filtered += (
            filtered_instructions - self._slice_filtered
        )
        self._slice_filtered = filtered_instructions
        self._slice_total = total_instructions
        self.tracker.sync(marker_counts)
        self._close_slice(
            end, per_thread=per_thread_filtered, extrapolated=True
        )
        return self.slices[-1]

    # -- internals --------------------------------------------------------------

    def _close_slice(
        self,
        end: Optional[Marker],
        per_thread: Optional[List[int]] = None,
        extrapolated: bool = False,
    ) -> None:
        if per_thread is None:
            per_thread = self.bbv.per_thread_instructions
        vector = self.bbv.emit()
        start_coordinate = (
            self._global_filtered - self._slice_filtered
        )
        self.slices.append(
            Slice(
                index=len(self.slices),
                start=self._slice_start,
                end=end,
                bbv=vector,
                filtered_instructions=self._slice_filtered,
                total_instructions=self._slice_total,
                per_thread_filtered=per_thread,
                start_filtered=start_coordinate,
                extrapolated=extrapolated,
            )
        )
        self._slice_start = end
        self._slice_filtered = 0
        self._slice_total = 0
        self._routine_mass = {}
