"""Compatibility shim for environments without PEP 660 editable support.

``pip install -e .`` uses pyproject.toml; this file lets
``python setup.py develop`` work offline (no wheel package) with identical
metadata, including the ``run-looppoint`` console script.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "run-looppoint = repro.cli:main",
            "repro-lint = repro.lint.cli:main",
            "repro-bench = repro.perf.cli:main",
        ],
    }
)
